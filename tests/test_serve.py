"""Serving front end: coalescing correctness, admission control,
deadlines, chaos containment and the SLO/loadgen surfaces.

The load-bearing property is **bit-identity**: a request served
through the coalescing scheduler — batched into an SpM×M or a block-CG
with whatever strangers happened to arrive in the same window — must
return exactly the bytes it would have computed alone on the serial
reference driver. Everything else (backpressure, deadlines, typed
failures, chaos fallback) is about *terminating* correctly: an
admitted request never hangs and never returns silently wrong data.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.parallel import Executor, ParallelSymmetricSpMV
from repro.resilience import ChaosPlan
from repro.serve import (
    CGResponse,
    DeadlineExceededError,
    OperatorRegistry,
    QueueFullError,
    ServerClosedError,
    SolverServer,
    SpMVResponse,
    UnknownOperatorError,
    matrix_fingerprint,
    run_load,
    serial_compute,
)
from repro.solvers import block_conjugate_gradient, conjugate_gradient

from repro.formats import COOMatrix, SSSMatrix

from tests.conformance import (
    CASES,
    COLORING_FORMATS,
    EXECUTOR_BACKENDS,
    build_symmetric,
    make_backend_executor,
    rhs_block,
)

CASE = "random"


def _registry(fmt: str, reduction: str, backend: str):
    matrix, parts = build_symmetric(CASE, fmt, "thirds")
    registry = OperatorRegistry()
    entry = registry.register(
        matrix, parts, reduction=reduction,
        executor=make_backend_executor(backend),
    )
    return registry, entry


def _spd_parts(n: int) -> list[tuple[int, int]]:
    bounds = np.linspace(0, n, 4).astype(int)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(3)]


def _spd_matrix() -> SSSMatrix:
    """Diagonally-dominated variant of the battery's random case: CG
    solves must run clean (no breakdowns) so block and solo metadata
    are comparable."""
    dense = CASES[CASE].dense.copy()
    np.fill_diagonal(
        dense, np.abs(dense).sum(axis=1) + 1.0
    )
    return SSSMatrix.from_coo(COOMatrix.from_dense(dense))


def _spd_registry(backend: str):
    matrix = _spd_matrix()
    registry = OperatorRegistry()
    entry = registry.register(
        matrix, _spd_parts(matrix.n_rows),
        executor=make_backend_executor(backend),
    )
    return registry, entry


def _run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Registry and fingerprinting
# ----------------------------------------------------------------------
def test_fingerprint_is_content_addressed():
    m1, _ = build_symmetric(CASE, "sss", "thirds")
    m2, _ = build_symmetric(CASE, "csx-sym", "thirds")
    m3, _ = build_symmetric("banded", "sss", "thirds")
    # Same matrix content, different storage formats: same key.
    assert matrix_fingerprint(m1) == matrix_fingerprint(m2)
    assert matrix_fingerprint(m1) != matrix_fingerprint(m3)
    assert matrix_fingerprint(m1) == matrix_fingerprint(m1.to_coo())


def test_register_is_idempotent_and_lookup_typed():
    registry, entry = _registry("sss", "indexed", "serial")
    matrix, parts = build_symmetric(CASE, "sss", "thirds")
    again = registry.register(matrix, parts)
    assert again is entry
    assert entry.key in registry and len(registry) == 1
    with pytest.raises(UnknownOperatorError) as exc:
        registry.get("deadbeef")
    assert isinstance(exc.value, KeyError)
    assert exc.value.key == "deadbeef"
    registry.close()


# ----------------------------------------------------------------------
# Coalescing bit-identity across formats, reductions and backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
@pytest.mark.parametrize("reduction", ["indexed", "coloring"])
@pytest.mark.parametrize("fmt", COLORING_FORMATS)
def test_coalesced_spmv_bit_identical(fmt, reduction, backend):
    registry, entry = _registry(fmt, reduction, backend)
    xs = [rhs_block(entry.n, None, seed=s) for s in range(6)]
    refs = [serial_compute(entry, "spmv", (), x) for x in xs]

    async def drive():
        async with SolverServer(registry, window=0.01) as server:
            return await asyncio.gather(
                *[server.spmv(entry.key, x) for x in xs]
            )

    resps = _run(drive())
    widths = [r.coalesced for r in resps]
    assert max(widths) > 1, "requests did not coalesce"
    for resp, ref in zip(resps, refs):
        assert isinstance(resp, SpMVResponse)
        assert np.array_equal(resp.y, ref)
    registry.close()


@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
def test_coalesced_cg_bit_identical(backend):
    registry, entry = _spd_registry(backend)
    bs = [rhs_block(entry.n, None, seed=10 + s) for s in range(5)]
    params = (1e-9, None)
    refs = [serial_compute(entry, "cg", params, b) for b in bs]

    async def drive():
        async with SolverServer(registry, window=0.01) as server:
            return await asyncio.gather(
                *[server.cg(entry.key, b, tol=1e-9) for b in bs]
            )

    resps = _run(drive())
    assert max(r.coalesced for r in resps) > 1
    for resp, ref in zip(resps, refs):
        assert isinstance(resp, CGResponse)
        assert np.array_equal(resp.result.x, ref.x)
        assert resp.result.iterations == ref.iterations
        assert resp.result.residual_norm == ref.residual_norm
        assert resp.result.converged == ref.converged
    registry.close()


def test_max_batch_caps_width_and_overflow_still_served():
    registry, entry = _registry("sss", "indexed", "serial")
    xs = [rhs_block(entry.n, None, seed=s) for s in range(11)]

    async def drive():
        async with SolverServer(
            registry, window=0.01, max_batch=4
        ) as server:
            return await asyncio.gather(
                *[server.spmv(entry.key, x) for x in xs]
            )

    resps = _run(drive())
    assert all(r.coalesced <= 4 for r in resps)
    for resp, x in zip(resps, xs):
        assert np.array_equal(resp.y, serial_compute(
            entry, "spmv", (), x))
    registry.close()


def test_coalesce_off_serves_solo_and_identical():
    registry, entry = _registry("sss", "indexed", "serial")
    xs = [rhs_block(entry.n, None, seed=s) for s in range(4)]

    async def drive():
        async with SolverServer(registry, coalesce=False) as server:
            return await asyncio.gather(
                *[server.spmv(entry.key, x) for x in xs]
            )

    resps = _run(drive())
    assert [r.coalesced for r in resps] == [1, 1, 1, 1]
    for resp, x in zip(resps, xs):
        assert np.array_equal(resp.y, serial_compute(
            entry, "spmv", (), x))
    registry.close()


def test_incompatible_cg_params_do_not_coalesce():
    registry, entry = _spd_registry("serial")
    b = rhs_block(entry.n, None, seed=3)

    async def drive():
        async with SolverServer(registry, window=0.01) as server:
            return await asyncio.gather(
                server.cg(entry.key, b, tol=1e-6),
                server.cg(entry.key, b, tol=1e-10),
            )

    loose, tight = _run(drive())
    assert loose.coalesced == 1 and tight.coalesced == 1
    assert loose.result.iterations < tight.result.iterations
    registry.close()


# ----------------------------------------------------------------------
# Admission control, deadlines, close
# ----------------------------------------------------------------------
def test_queue_full_rejection_is_typed_and_immediate():
    registry, entry = _registry("sss", "indexed", "serial")

    async def drive():
        server = SolverServer(
            registry, window=1.0, max_pending=2
        )
        first = [
            asyncio.ensure_future(
                server.spmv(entry.key, rhs_block(entry.n, None, seed=s))
            )
            for s in (0, 1)
        ]
        await asyncio.sleep(0)
        with pytest.raises(QueueFullError) as exc:
            await server.spmv(
                entry.key, rhs_block(entry.n, None, seed=2)
            )
        assert exc.value.pending == 2 and exc.value.limit == 2
        assert server.metrics.counter_value(
            "serve.rejected", reason="queue_full"
        ) == 1
        await server.close()
        for fut in first:
            with pytest.raises(ServerClosedError):
                await fut

    _run(drive())
    registry.close()


def test_deadline_expires_while_queued():
    registry, entry = _registry("sss", "indexed", "serial")

    async def drive():
        server = SolverServer(registry, window=0.25)
        with pytest.raises(DeadlineExceededError) as exc:
            await server.spmv(
                entry.key, rhs_block(entry.n, None, seed=0),
                deadline=0.005,
            )
        assert exc.value.stage == "queued"
        assert server.metrics.counter_value(
            "serve.expired", stage="queued"
        ) == 1
        assert server.pending == 0
        await server.close()

    _run(drive())
    registry.close()


def test_closed_server_refuses_submissions():
    registry, entry = _registry("sss", "indexed", "serial")

    async def drive():
        server = SolverServer(registry)
        await server.close()
        with pytest.raises(ServerClosedError):
            await server.spmv(
                entry.key, rhs_block(entry.n, None, seed=0)
            )
        await server.close()  # idempotent

    _run(drive())
    registry.close()


def test_wrong_shape_and_unknown_key_fail_fast():
    registry, entry = _registry("sss", "indexed", "serial")

    async def drive():
        async with SolverServer(registry) as server:
            with pytest.raises(ValueError):
                await server.spmv(entry.key, np.ones(entry.n + 1))
            with pytest.raises(UnknownOperatorError):
                await server.spmv("nope", np.ones(entry.n))
            assert server.pending == 0

    _run(drive())
    registry.close()


# ----------------------------------------------------------------------
# Chaos drill: faults are contained, never wrong, never hung
# ----------------------------------------------------------------------
def test_chaos_under_load_completes_correct_or_typed():
    matrix, parts = build_symmetric(CASE, "sss", "thirds")
    registry = OperatorRegistry()
    entry = registry.register(
        matrix, parts,
        executor=Executor("chaos", plan=ChaosPlan(
            seed=11, p_raise=0.5, p_delay=0.3, max_delay_ms=0.1,
        )),
    )

    async def drive():
        async with SolverServer(registry, window=0.003) as server:
            report = await run_load(
                server, entry.key, kind="spmv", concurrency=6,
                n_requests=48, seed=5,
            )
            fallbacks = server.metrics.counter_value(
                "serve.fallback_requests"
            )
        return report, fallbacks

    report, fallbacks = _run(drive())
    # Every response that came back matched its reference bit-for-bit,
    # every request terminated, and the drill actually exercised the
    # containment path.
    assert report.n_incorrect == 0
    assert (report.n_ok + report.n_rejected + report.n_expired
            + report.n_failed) == report.n_requests
    assert fallbacks > 0
    registry.close()


def test_chaos_cg_under_load_correct():
    matrix = _spd_matrix()
    registry = OperatorRegistry()
    entry = registry.register(
        matrix, _spd_parts(matrix.n_rows),
        executor=Executor("chaos", plan=ChaosPlan(
            seed=3, p_raise=0.4, p_delay=0.0,
        )),
    )

    async def drive():
        async with SolverServer(registry, window=0.003) as server:
            return await run_load(
                server, entry.key, kind="cg", concurrency=4,
                n_requests=8, tol=1e-9, seed=6,
            )

    report = _run(drive())
    assert report.n_incorrect == 0
    assert report.n_ok > 0
    registry.close()


# ----------------------------------------------------------------------
# Metrics, SLOs, loadgen report
# ----------------------------------------------------------------------
def test_serving_metrics_and_slo_reports():
    registry, entry = _registry("sss", "indexed", "serial")

    async def drive():
        server = SolverServer(registry, window=0.005)
        server.add_slo("serve.p99", threshold_ms=10_000.0)
        server.add_slo(
            "serve.spmv.p50", threshold_ms=10_000.0,
            percentile=50.0, kind="spmv",
        )
        xs = [rhs_block(entry.n, None, seed=s) for s in range(5)]
        await asyncio.gather(
            *[server.spmv(entry.key, x) for x in xs]
        )
        reports = server.slo_reports()
        m = server.metrics
        assert m.counter_value("serve.requests", kind="spmv") == 5
        assert m.counter_value("serve.coalesced_requests") == 5
        assert m.gauge_value("serve.pending") == 0
        await server.close()
        return reports

    reports = _run(drive())
    assert len(reports) == 2
    assert all(r.met and r.healthy for r in reports)
    assert "serve.p99" in reports[0].render()
    registry.close()


def test_loadgen_report_shape_and_audit():
    registry, entry = _registry("sss", "indexed", "serial")

    async def drive():
        async with SolverServer(registry, window=0.002) as server:
            return await run_load(
                server, entry.key, concurrency=4, n_requests=20,
                pool_size=4, seed=7,
            )

    report = _run(drive())
    assert report.n_ok == 20 and report.correct
    assert report.p50_ms <= report.p95_ms <= report.p99_ms
    assert report.mean_coalesced >= 1.0
    doc = report.to_dict()
    assert doc["n_incorrect"] == 0 and doc["kind"] == "spmv"
    assert "ok" in report.render()
    registry.close()


# ----------------------------------------------------------------------
# Block-CG demultiplexing pins (the solver-side contract serve rests on)
# ----------------------------------------------------------------------
def test_block_cg_column_matches_solo_solve_exactly():
    matrix = _spd_matrix()
    driver = ParallelSymmetricSpMV(
        matrix, _spd_parts(matrix.n_rows), "indexed"
    )
    n = matrix.n_rows
    B = rhs_block(n, 6, seed=21)
    block = block_conjugate_gradient(
        lambda X: driver(X), B, tol=1e-10
    )
    for j in range(6):
        col = block.column(j)
        solo = conjugate_gradient(
            lambda x: driver(x), np.ascontiguousarray(B[:, j]),
            tol=1e-10,
        )
        assert np.array_equal(col.x, solo.x)
        assert col.converged == solo.converged
        # A coalesced column reports the iteration its iterate froze
        # at — the solo solve's count, not the block's shared count.
        assert col.iterations == solo.iterations
        assert col.residual_norm == solo.residual_norm


def test_block_cg_should_stop_cuts_solve():
    matrix = _spd_matrix()
    driver = ParallelSymmetricSpMV(
        matrix, _spd_parts(matrix.n_rows), "indexed"
    )
    B = rhs_block(matrix.n_rows, 3, seed=22)
    calls = []
    res = block_conjugate_gradient(
        lambda X: driver(X), B, tol=1e-12,
        should_stop=lambda: len(calls) >= 2 or calls.append(None),
    )
    assert res.iterations <= 2
    assert not res.all_converged
