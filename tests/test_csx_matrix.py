"""Unit tests for the (unsymmetric) CSX format."""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSRMatrix, CSXMatrix
from repro.formats.csx import DetectionConfig


def test_spmv_matches_dense(sym_dense_medium, rng):
    coo = COOMatrix.from_dense(sym_dense_medium)
    csx = CSXMatrix(coo)
    x = rng.standard_normal(csx.n_cols)
    assert np.allclose(csx.spmv(x), sym_dense_medium @ x)


def test_spmv_unsymmetric_matrix(rng):
    dense = rng.random((40, 40))
    dense[dense < 0.85] = 0.0
    coo = COOMatrix.from_dense(dense)
    csx = CSXMatrix(coo)
    x = rng.standard_normal(40)
    assert np.allclose(csx.spmv(x), dense @ x)


def test_nnz_preserved(sym_coo_medium):
    csx = CSXMatrix(sym_coo_medium)
    assert csx.nnz == sym_coo_medium.nnz
    assert csx.stored_entries == sym_coo_medium.nnz


def test_compresses_structured_matrix(sym_coo_medium):
    """CSX ctl must beat CSR's colind+rowptr on run-rich matrices."""
    csr = CSRMatrix.from_coo(sym_coo_medium)
    csx = CSXMatrix(sym_coo_medium)
    csr_index_bytes = 4 * csr.nnz + 4 * (csr.n_rows + 1)
    assert csx.ctl_size_bytes() < csr_index_bytes
    assert csx.size_bytes() < csr.size_bytes()


def test_partitioned_build_and_spmv(sym_dense_medium, rng):
    coo = COOMatrix.from_dense(sym_dense_medium)
    parts = [(0, 80), (80, 160), (160, 300)]
    csx = CSXMatrix(coo, partitions=parts)
    assert len(csx.partitions) == 3
    x = rng.standard_normal(coo.n_cols)
    assert np.allclose(csx.spmv(x), sym_dense_medium @ x)
    # Per-partition kernels write disjoint row ranges.
    y = np.zeros(coo.n_rows)
    for i in range(3):
        csx.spmv_partition_only(x, y, i)
    assert np.allclose(y, sym_dense_medium @ x)


def test_bad_partitions_rejected(sym_coo_small):
    n = sym_coo_small.n_rows
    with pytest.raises(ValueError):
        CSXMatrix(sym_coo_small, partitions=[(0, n - 1)])
    with pytest.raises(ValueError):
        CSXMatrix(sym_coo_small, partitions=[(0, 10), (20, n)])
    with pytest.raises(ValueError):
        CSXMatrix(sym_coo_small, partitions=[(0, 40), (30, n)])


def test_to_coo_roundtrip(sym_coo_medium):
    csx = CSXMatrix(sym_coo_medium)
    assert np.array_equal(
        csx.to_coo().to_dense(), sym_coo_medium.to_dense()
    )


def test_detection_reports_exposed(sym_coo_medium):
    csx = CSXMatrix(sym_coo_medium, partitions=[(0, 150), (150, 300)])
    reports = csx.detection_reports()
    assert len(reports) == 2
    assert sum(r.total_elements for r in reports) == csx.nnz


def test_substructure_coverage_range(sym_coo_medium):
    csx = CSXMatrix(sym_coo_medium)
    assert 0.0 < csx.substructure_coverage() <= 1.0


def test_deltas_only_config(sym_coo_medium, rng):
    config = DetectionConfig(
        enable_horizontal=False,
        enable_vertical=False,
        enable_diagonal=False,
        enable_anti_diagonal=False,
        enable_blocks=False,
    )
    csx = CSXMatrix(sym_coo_medium, config=config)
    assert csx.substructure_coverage() == 0.0
    x = rng.standard_normal(csx.n_cols)
    expected = sym_coo_medium.to_dense() @ x
    assert np.allclose(csx.spmv(x), expected)


def test_empty_matrix():
    csx = CSXMatrix(COOMatrix.empty((8, 8)))
    assert csx.nnz == 0
    assert np.array_equal(csx.spmv(np.ones(8)), np.zeros(8))


def test_values_and_ctl_sizes_accounted(sym_coo_medium):
    csx = CSXMatrix(sym_coo_medium)
    assert csx.size_bytes() == 8 * csx.nnz + csx.ctl_size_bytes()
    assert csx.ctl_size_bytes() > 0
