"""Unit tests for MatrixMarket I/O."""

import io

import numpy as np
import pytest

from repro.formats import COOMatrix
from repro.matrices import read_matrix_market, write_matrix_market


def test_general_roundtrip(tmp_path, rng):
    dense = rng.random((6, 9))
    dense[dense < 0.6] = 0.0
    coo = COOMatrix.from_dense(dense)
    path = tmp_path / "m.mtx"
    write_matrix_market(path, coo)
    back = read_matrix_market(path)
    assert back.shape == coo.shape
    assert np.allclose(back.to_dense(), dense)


def test_symmetric_roundtrip(tmp_path, sym_coo_small):
    path = tmp_path / "s.mtx"
    write_matrix_market(path, sym_coo_small, symmetric=True)
    back = read_matrix_market(path)
    assert np.allclose(back.to_dense(), sym_coo_small.to_dense())


def test_symmetric_file_stores_lower_only(tmp_path, sym_coo_small):
    path = tmp_path / "s.mtx"
    write_matrix_market(path, sym_coo_small, symmetric=True)
    text = path.read_text()
    assert "symmetric" in text.splitlines()[0]
    stored = int(text.splitlines()[1].split()[2])
    lower = sym_coo_small.lower_triangle(strict=False).nnz
    assert stored == lower < sym_coo_small.nnz


def test_symmetric_write_rejects_unsymmetric(tmp_path):
    coo = COOMatrix((2, 2), [0], [1], [1.0])
    with pytest.raises(ValueError):
        write_matrix_market(tmp_path / "x.mtx", coo, symmetric=True)


def test_stream_io(sym_coo_small):
    buf = io.StringIO()
    write_matrix_market(buf, sym_coo_small, symmetric=True)
    buf.seek(0)
    back = read_matrix_market(buf)
    assert np.allclose(back.to_dense(), sym_coo_small.to_dense())


def test_comments_skipped():
    text = (
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "2 2 1\n"
        "1 2 3.5\n"
    )
    coo = read_matrix_market(io.StringIO(text))
    assert coo.to_dense()[0, 1] == 3.5


def test_bad_header_rejected():
    with pytest.raises(ValueError):
        read_matrix_market(io.StringIO("%%MatrixMarket matrix array real\n1 1\n1.0\n"))
    with pytest.raises(ValueError):
        read_matrix_market(io.StringIO(""))
    with pytest.raises(ValueError):
        read_matrix_market(
            io.StringIO("%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n")
        )


def test_entry_count_mismatch_rejected():
    text = (
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n"
    )
    with pytest.raises(ValueError):
        read_matrix_market(io.StringIO(text))


def test_empty_matrix_roundtrip(tmp_path):
    coo = COOMatrix.empty((3, 3))
    path = tmp_path / "e.mtx"
    write_matrix_market(path, coo)
    back = read_matrix_market(path)
    assert back.nnz == 0 and back.shape == (3, 3)


def test_values_preserved_exactly(tmp_path):
    vals = np.array([1e-17, 3.141592653589793, 2.5e300])
    coo = COOMatrix((3, 3), [0, 1, 2], [0, 1, 2], vals)
    path = tmp_path / "p.mtx"
    write_matrix_market(path, coo)
    back = read_matrix_market(path)
    assert np.array_equal(np.sort(back.vals), np.sort(vals))


# ----------------------------------------------------------------------
# Input-hardening regressions (found/pinned by the repro.fuzz pass)
# ----------------------------------------------------------------------
def test_comment_with_leading_whitespace_skipped():
    # Comment lines indented with whitespace used to reach the entry
    # parser and fail as malformed entries.
    text = (
        "%%MatrixMarket matrix coordinate real general\n"
        "  % indented comment\n"
        "2 2 1\n"
        "\t% tab-indented comment\n"
        "1 2 3.5\n"
    )
    coo = read_matrix_market(io.StringIO(text))
    assert coo.to_dense()[0, 1] == 3.5


def test_symmetric_upper_entry_mirrored():
    # Per the MM convention a symmetric file stores the lower triangle;
    # an upper entry used to be expanded as if it were lower, silently
    # mis-placing the value.  It is now mirrored before expansion.
    text = (
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 2\n"
        "1 3 2.5\n"
        "2 2 1.0\n"
    )
    dense = read_matrix_market(io.StringIO(text)).to_dense()
    assert dense[0, 2] == 2.5 and dense[2, 0] == 2.5
    assert dense[1, 1] == 1.0


def test_symmetric_upper_entry_error_mode():
    from repro.formats import TriangleConventionError

    text = (
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 1\n"
        "1 3 2.5\n"
    )
    with pytest.raises(TriangleConventionError):
        read_matrix_market(io.StringIO(text), upper="error")


def test_duplicate_entries_rejected():
    # Duplicates fed into the symmetric expansion with
    # ``sum_duplicates=False`` used to double-count downstream.
    from repro.formats import CanonicalityError

    text = (
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "2 2 2\n"
        "2 1 1.0\n"
        "2 1 1.0\n"
    )
    with pytest.raises(CanonicalityError):
        read_matrix_market(io.StringIO(text))


def test_duplicate_via_mirror_rejected():
    # A lower entry and its transposed twin collide after mirroring.
    from repro.formats import CanonicalityError

    text = (
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "2 2 2\n"
        "2 1 1.0\n"
        "1 2 1.0\n"
    )
    with pytest.raises(CanonicalityError):
        read_matrix_market(io.StringIO(text))


def test_junk_value_rejected():
    from repro.formats import ParseError

    text = (
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "1 1 zebra\n"
    )
    with pytest.raises(ParseError):
        read_matrix_market(io.StringIO(text))


def test_out_of_range_index_rejected():
    from repro.formats import BoundsError

    text = (
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "5 1 1.0\n"
    )
    with pytest.raises(BoundsError):
        read_matrix_market(io.StringIO(text))


def test_nonfinite_value_rejected():
    from repro.formats import NonFiniteError

    text = (
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "1 1 nan\n"
    )
    with pytest.raises(NonFiniteError):
        read_matrix_market(io.StringIO(text))
