"""Unit tests for MatrixMarket I/O."""

import io

import numpy as np
import pytest

from repro.formats import COOMatrix
from repro.matrices import read_matrix_market, write_matrix_market


def test_general_roundtrip(tmp_path, rng):
    dense = rng.random((6, 9))
    dense[dense < 0.6] = 0.0
    coo = COOMatrix.from_dense(dense)
    path = tmp_path / "m.mtx"
    write_matrix_market(path, coo)
    back = read_matrix_market(path)
    assert back.shape == coo.shape
    assert np.allclose(back.to_dense(), dense)


def test_symmetric_roundtrip(tmp_path, sym_coo_small):
    path = tmp_path / "s.mtx"
    write_matrix_market(path, sym_coo_small, symmetric=True)
    back = read_matrix_market(path)
    assert np.allclose(back.to_dense(), sym_coo_small.to_dense())


def test_symmetric_file_stores_lower_only(tmp_path, sym_coo_small):
    path = tmp_path / "s.mtx"
    write_matrix_market(path, sym_coo_small, symmetric=True)
    text = path.read_text()
    assert "symmetric" in text.splitlines()[0]
    stored = int(text.splitlines()[1].split()[2])
    lower = sym_coo_small.lower_triangle(strict=False).nnz
    assert stored == lower < sym_coo_small.nnz


def test_symmetric_write_rejects_unsymmetric(tmp_path):
    coo = COOMatrix((2, 2), [0], [1], [1.0])
    with pytest.raises(ValueError):
        write_matrix_market(tmp_path / "x.mtx", coo, symmetric=True)


def test_stream_io(sym_coo_small):
    buf = io.StringIO()
    write_matrix_market(buf, sym_coo_small, symmetric=True)
    buf.seek(0)
    back = read_matrix_market(buf)
    assert np.allclose(back.to_dense(), sym_coo_small.to_dense())


def test_comments_skipped():
    text = (
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "2 2 1\n"
        "1 2 3.5\n"
    )
    coo = read_matrix_market(io.StringIO(text))
    assert coo.to_dense()[0, 1] == 3.5


def test_bad_header_rejected():
    with pytest.raises(ValueError):
        read_matrix_market(io.StringIO("%%MatrixMarket matrix array real\n1 1\n1.0\n"))
    with pytest.raises(ValueError):
        read_matrix_market(io.StringIO(""))
    with pytest.raises(ValueError):
        read_matrix_market(
            io.StringIO("%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n")
        )


def test_entry_count_mismatch_rejected():
    text = (
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n"
    )
    with pytest.raises(ValueError):
        read_matrix_market(io.StringIO(text))


def test_empty_matrix_roundtrip(tmp_path):
    coo = COOMatrix.empty((3, 3))
    path = tmp_path / "e.mtx"
    write_matrix_market(path, coo)
    back = read_matrix_market(path)
    assert back.nnz == 0 and back.shape == (3, 3)


def test_values_preserved_exactly(tmp_path):
    vals = np.array([1e-17, 3.141592653589793, 2.5e300])
    coo = COOMatrix((3, 3), [0, 1, 2], [0, 1, 2], vals)
    path = tmp_path / "p.mtx"
    write_matrix_market(path, coo)
    back = read_matrix_market(path)
    assert np.array_equal(np.sort(back.vals), np.sort(vals))
