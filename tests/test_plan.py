"""Unit tests for the vectorized execution-plan compiler."""

import numpy as np
import pytest

from repro.formats.csx.detect import detect_and_encode
from repro.formats.csx.plan import compile_plan
from repro.formats.csx.substructures import (
    PatternKey,
    PatternType,
    Unit,
)


def encode(dense):
    rows, cols = np.nonzero(dense)
    return detect_and_encode(
        rows.astype(np.int64),
        cols.astype(np.int64),
        dense[rows, cols],
        dense.shape[1],
    )[0]


def test_plan_executes_spmv(sym_dense_small, rng):
    units = encode(sym_dense_small)
    plan = compile_plan(units, sym_dense_small.shape[0])
    x = rng.standard_normal(sym_dense_small.shape[1])
    y = np.zeros(sym_dense_small.shape[0])
    plan.execute(x, y)
    assert np.allclose(y, sym_dense_small @ x)


def test_plan_accumulates_not_overwrites(sym_dense_small, rng):
    units = encode(sym_dense_small)
    plan = compile_plan(units, sym_dense_small.shape[0])
    x = rng.standard_normal(sym_dense_small.shape[1])
    y = np.ones(sym_dense_small.shape[0])
    plan.execute(x, y)
    assert np.allclose(y, 1.0 + sym_dense_small @ x)


def test_kernels_grouped_by_pattern_and_length():
    units = [
        Unit(PatternKey(PatternType.HORIZONTAL, (1,)), 0, 0, 4,
             values=np.ones(4)),
        Unit(PatternKey(PatternType.HORIZONTAL, (1,)), 1, 0, 4,
             values=np.ones(4)),
        Unit(PatternKey(PatternType.HORIZONTAL, (1,)), 2, 0, 5,
             values=np.ones(5)),
    ]
    plan = compile_plan(units, 3)
    assert len(plan.kernels) == 2
    by_len = {k.length: k.n_units for k in plan.kernels}
    assert by_len == {4: 2, 5: 1}


def test_row_uniform_flags():
    units = [
        Unit(PatternKey(PatternType.HORIZONTAL, (1,)), 0, 0, 4,
             values=np.ones(4)),
        Unit(PatternKey(PatternType.VERTICAL, (1,)), 1, 0, 4,
             values=np.ones(4)),
    ]
    plan = compile_plan(units, 8)
    flags = {k.pattern.type: k.row_uniform for k in plan.kernels}
    assert flags[PatternType.HORIZONTAL] is True
    assert flags[PatternType.VERTICAL] is False


def test_compile_requires_values():
    u = Unit(PatternKey(PatternType.HORIZONTAL, (1,)), 0, 0, 4)
    with pytest.raises(ValueError):
        compile_plan([u], 4)


def test_transposed_split_routing(rng):
    # Lower-triangular entries of a symmetric matrix; boundary routing.
    n = 30
    dense = np.zeros((n, n))
    rng2 = np.random.default_rng(0)
    for r in range(1, n):
        c = rng2.integers(0, r)
        dense[r, c] = rng2.uniform(0.5, 1.0)
    units = encode(dense)
    plan = compile_plan(units, n)
    x = rng.standard_normal(n)
    boundary = 15
    direct = np.zeros(n)
    local = np.zeros(n)
    plan.execute_transposed_split(x, direct, local, boundary)
    expected = dense.T @ x
    assert np.allclose(direct + local, expected)
    assert np.allclose(local[boundary:], 0.0)
    # Everything below the boundary went local.
    assert np.allclose(direct[:boundary], 0.0)


def test_transposed_split_zero_boundary(sym_dense_small, rng):
    units = encode(sym_dense_small)
    plan = compile_plan(units, sym_dense_small.shape[0])
    x = rng.standard_normal(sym_dense_small.shape[1])
    direct = np.zeros(sym_dense_small.shape[0])
    plan.execute_transposed_split(x, direct, np.zeros(0), boundary=0)
    assert np.allclose(direct, sym_dense_small.T @ x)


def test_element_coordinates_cover_all(sym_dense_small):
    units = encode(sym_dense_small)
    plan = compile_plan(units, sym_dense_small.shape[0])
    rows, cols = plan.element_coordinates()
    n = sym_dense_small.shape[1]
    got = np.sort(rows * n + cols)
    er, ec = np.nonzero(sym_dense_small)
    want = np.sort(er.astype(np.int64) * n + ec)
    assert np.array_equal(got, want)
    assert plan.n_elements == want.size


def test_empty_plan():
    plan = compile_plan([], 5)
    y = np.zeros(5)
    plan.execute(np.ones(5), y)
    assert np.array_equal(y, np.zeros(5))
    rows, cols = plan.element_coordinates()
    assert rows.size == 0 and cols.size == 0
