"""Unit tests for the from-scratch Cuthill-McKee / RCM implementation."""

import numpy as np
import pytest
from scipy.sparse.csgraph import reverse_cuthill_mckee as scipy_rcm

from repro.formats import COOMatrix
from repro.matrices import banded_random, grid_laplacian_2d, permute_random
from repro.reorder import (
    bandwidth_stats,
    cuthill_mckee,
    rcm_reorder,
    reverse_cuthill_mckee,
)


def test_perm_is_valid_permutation(rng):
    m = banded_random(200, 8.0, 15, rng)
    perm = reverse_cuthill_mckee(m)
    assert np.array_equal(np.sort(perm), np.arange(200))


def test_rcm_restores_banded_structure(rng):
    base = banded_random(600, nnz_per_row=8.0, band=12, rng=rng)
    scrambled = permute_random(base, rng)
    assert bandwidth_stats(scrambled).bandwidth > 5 * 12
    reordered, _ = rcm_reorder(scrambled)
    assert (
        bandwidth_stats(reordered).bandwidth
        < 0.2 * bandwidth_stats(scrambled).bandwidth
    )


def test_rcm_comparable_to_scipy(rng):
    base = grid_laplacian_2d(20, 20)
    scrambled = permute_random(base, rng)
    ours, _ = rcm_reorder(scrambled)
    sp_perm = np.asarray(scipy_rcm(scrambled.to_scipy(), symmetric_mode=True))
    theirs = scrambled.permute_symmetric(sp_perm)
    bw_ours = bandwidth_stats(ours).bandwidth
    bw_theirs = bandwidth_stats(theirs).bandwidth
    assert bw_ours <= 2 * bw_theirs  # same bandwidth class


def test_rcm_preserves_matrix(rng):
    m = banded_random(100, 6.0, 10, rng)
    reordered, perm = rcm_reorder(m)
    expected = m.to_dense()[np.ix_(perm, perm)]
    assert np.array_equal(reordered.to_dense(), expected)


def test_cm_visits_connected_component_contiguously():
    # Path graph: CM order must be the path itself (possibly reversed).
    n = 10
    rows = np.arange(1, n)
    cols = rows - 1
    coo = COOMatrix(
        (n, n),
        np.concatenate([rows, cols, np.arange(n)]),
        np.concatenate([cols, rows, np.arange(n)]),
        np.ones(2 * (n - 1) + n),
    )
    perm = cuthill_mckee(coo)
    diffs = np.abs(np.diff(perm))
    assert np.all(diffs == 1)


def test_disconnected_components_all_visited(rng):
    # Two separate blocks, no coupling.
    dense = np.zeros((10, 10))
    dense[:5, :5] = 1.0
    dense[5:, 5:] = 1.0
    coo = COOMatrix.from_dense(dense)
    perm = cuthill_mckee(coo)
    assert np.array_equal(np.sort(perm), np.arange(10))


def test_isolated_vertices(rng):
    dense = np.diag(np.arange(1.0, 7.0))
    dense[0, 3] = dense[3, 0] = 1.0
    coo = COOMatrix.from_dense(dense)
    perm = cuthill_mckee(coo)
    assert np.array_equal(np.sort(perm), np.arange(6))


def test_rcm_rejects_rectangular():
    coo = COOMatrix((2, 3), [0], [1], [1.0])
    with pytest.raises(ValueError):
        cuthill_mckee(coo)


def test_empty_matrix():
    assert cuthill_mckee(COOMatrix.empty((0, 0))).size == 0


def test_reverse_is_reverse(rng):
    m = banded_random(50, 6.0, 8, rng)
    cm = cuthill_mckee(m)
    rcm = reverse_cuthill_mckee(m)
    assert np.array_equal(rcm, cm[::-1])


def test_rcm_with_precomputed_perm(rng):
    m = banded_random(80, 6.0, 8, rng)
    perm = reverse_cuthill_mckee(m)
    reordered, perm_out = rcm_reorder(m, perm)
    assert perm_out is perm
    assert reordered.is_symmetric()


# ----------------------------------------------------------------------
# Disconnected-graph regressions (fuzz-hardening pass)
# ----------------------------------------------------------------------
def test_bfs_levels_leave_other_components_at_minus_one():
    # Unreachable vertices used to be mapped to level 0, aliasing them
    # with the start vertex and corrupting the pseudo-peripheral
    # eccentricity search on disconnected graphs.
    from repro.reorder.rcm import _adjacency, _bfs_levels

    dense = np.zeros((6, 6))
    dense[0, 1] = dense[1, 0] = 1.0
    dense[1, 2] = dense[2, 1] = 1.0
    dense[4, 5] = dense[5, 4] = 1.0  # second component (+ isolated 3)
    indptr, indices = _adjacency(COOMatrix.from_dense(dense))
    levels = _bfs_levels(indptr, indices, 0)
    assert np.array_equal(levels[:3], [0, 1, 2])
    assert np.all(levels[3:] == -1)


def test_multi_component_visits_each_component_contiguously():
    # Chain 0-1-2, chain 3-4, isolated 5: CM must exhaust one component
    # before restarting in the next.
    dense = np.zeros((6, 6))
    for i, j in [(0, 1), (1, 2), (3, 4)]:
        dense[i, j] = dense[j, i] = 1.0
    coo = COOMatrix.from_dense(dense)
    perm = cuthill_mckee(coo)
    assert np.array_equal(np.sort(perm), np.arange(6))
    component = np.array([0, 0, 0, 1, 1, 2])
    visited = component[perm]
    changes = np.count_nonzero(np.diff(visited) != 0)
    assert changes == 2  # each component is one contiguous run
