"""Smoke tests: every shipped example must run end to end.

Examples are public deliverables; each is executed in-process (argv
patched) at a reduced problem size and must complete without raising.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, monkeypatch) -> None:
    script = EXAMPLES / name
    assert script.exists(), script
    monkeypatch.setattr(sys, "argv", [str(script), *args])
    runpy.run_path(str(script), run_name="__main__")


def test_quickstart(monkeypatch, capsys):
    run_example("quickstart.py", monkeypatch=monkeypatch)
    out = capsys.readouterr().out
    assert "csx-sym" in out
    assert "effective-region density" in out


def test_cg_solver(monkeypatch, capsys):
    run_example("cg_solver.py", "24", monkeypatch=monkeypatch)
    out = capsys.readouterr().out
    assert "same solution" in out


def test_scaling_study(monkeypatch, capsys):
    run_example(
        "scaling_study.py", "consph", "0.005", monkeypatch=monkeypatch
    )
    out = capsys.readouterr().out
    assert "Dunnington" in out and "Gainestown" in out


def test_format_explorer(monkeypatch, capsys):
    run_example("format_explorer.py", "bmw7st_1", monkeypatch=monkeypatch)
    out = capsys.readouterr().out
    assert "substructure coverage" in out
    assert "MatrixMarket round trip" in out


def test_related_methods(monkeypatch, capsys):
    run_example(
        "related_methods.py", "thermal2", "0.003", monkeypatch=monkeypatch
    )
    out = capsys.readouterr().out
    assert "indexing" in out and "csb-sym" in out and "coloring" in out
