"""Unit tests for thread partitioning."""

import numpy as np
import pytest

from repro.parallel import (
    partition_nnz_balanced,
    partition_rows_equal,
    validate_partitions,
)
from repro.parallel.partition import partition_bounds_to_starts


def test_equal_rows_tile_exactly():
    parts = partition_rows_equal(100, 7)
    validate_partitions(parts, 100)
    sizes = [e - s for s, e in parts]
    assert max(sizes) - min(sizes) <= 1


def test_equal_rows_more_threads_than_rows():
    parts = partition_rows_equal(3, 8)
    validate_partitions(parts, 3)
    assert sum(e - s for s, e in parts) == 3


def test_equal_rows_single_thread():
    assert partition_rows_equal(42, 1) == [(0, 42)]


def test_equal_rows_rejects_zero_threads():
    with pytest.raises(ValueError):
        partition_rows_equal(10, 0)


def test_nnz_balanced_uniform_weights():
    weights = np.ones(100)
    parts = partition_nnz_balanced(weights, 4)
    validate_partitions(parts, 100)
    assert [e - s for s, e in parts] == [25, 25, 25, 25]


def test_nnz_balanced_skewed_weights():
    weights = np.zeros(100)
    weights[:10] = 100.0  # all mass in the first 10 rows
    weights[10:] = 1.0
    parts = partition_nnz_balanced(weights, 4)
    validate_partitions(parts, 100)
    loads = [weights[s:e].sum() for s, e in parts]
    # First partitions must be much narrower than the last.
    assert parts[0][1] - parts[0][0] < parts[-1][1] - parts[-1][0]
    assert max(loads) <= 2.2 * (weights.sum() / 4)


def test_nnz_balanced_balances_within_tolerance(rng):
    weights = rng.integers(1, 50, size=1000).astype(float)
    parts = partition_nnz_balanced(weights, 8)
    validate_partitions(parts, 1000)
    loads = np.array([weights[s:e].sum() for s, e in parts])
    target = weights.sum() / 8
    assert np.all(np.abs(loads - target) < 60)  # within max row weight


def test_nnz_balanced_zero_weights_falls_back_to_rows():
    parts = partition_nnz_balanced(np.zeros(40), 4)
    validate_partitions(parts, 40)
    assert [e - s for s, e in parts] == [10, 10, 10, 10]


def test_nnz_balanced_empty_matrix():
    parts = partition_nnz_balanced(np.zeros(0), 3)
    assert parts == [(0, 0)] * 3


def test_nnz_balanced_rejects_negative_weights():
    with pytest.raises(ValueError):
        partition_nnz_balanced(np.array([1.0, -1.0]), 2)


def test_nnz_balanced_rejects_2d():
    with pytest.raises(ValueError):
        partition_nnz_balanced(np.ones((3, 3)), 2)


def test_more_threads_than_rows_yields_empty_partitions():
    parts = partition_nnz_balanced(np.ones(2), 5)
    validate_partitions(parts, 2)
    assert sum(e - s for s, e in parts) == 2


def test_bounds_to_starts():
    parts = [(0, 10), (10, 30), (30, 50)]
    assert np.array_equal(partition_bounds_to_starts(parts), [0, 10, 30])


def test_validate_rejects_gap():
    with pytest.raises(ValueError):
        validate_partitions([(0, 10), (11, 20)], 20)


def test_validate_rejects_short_cover():
    with pytest.raises(ValueError):
        validate_partitions([(0, 10)], 20)


def test_validate_rejects_negative_range():
    with pytest.raises(ValueError):
        validate_partitions([(0, 10), (10, 5)], 10)


# ----------------------------------------------------------------------
# Boundary behavior of the nnz-balanced cuts (fuzz-hardening pass)
# ----------------------------------------------------------------------
def test_nnz_balanced_heavy_crossing_row_not_forced_left():
    # The old ``searchsorted + 1`` rule always pushed the crossing row
    # into the left partition: weights [1, 5] split 2 ways came out as
    # loads [6, 0] instead of [1, 5].
    parts = partition_nnz_balanced(np.array([1.0, 5.0]), 2)
    validate_partitions(parts, 2)
    assert parts == [(0, 1), (1, 2)]


def test_nnz_balanced_exact_quantile_hits_unchanged():
    # Exact hits were already load-optimal and must keep cutting after
    # the crossing row.
    parts = partition_nnz_balanced(np.ones(8), 4)
    assert parts == [(0, 2), (2, 4), (4, 6), (6, 8)]


from hypothesis import given, settings
from hypothesis import strategies as st


@given(
    st.lists(st.integers(1, 20), min_size=1, max_size=40),
    st.integers(1, 6),
)
@settings(max_examples=80, deadline=None)
def test_nnz_balanced_cuts_are_load_optimal(ws, p):
    """Every un-collided boundary sits at the prefix weight closest to
    its ``i/p`` quantile target — no boundary can be improved by moving
    it to any other row."""
    weights = np.asarray(ws, dtype=np.float64)
    n = weights.size
    parts = partition_nnz_balanced(weights, p)
    validate_partitions(parts, n)
    cum = np.concatenate([[0.0], np.cumsum(weights)])
    bounds = [s for s, _ in parts] + [n]
    total = float(weights.sum())
    for i in range(1, p):
        b = bounds[i]
        if b <= bounds[i - 1] or b >= n:
            continue  # collided/clamped with a neighbouring cut
        target = total * i / p
        best = float(np.min(np.abs(cum - target)))
        assert abs(cum[b] - target) <= best + 1e-9
