"""Failure-injection tests: corrupted inputs must fail loudly.

The ctl codec, the format constructors and the parallel kernels sit on
trust boundaries (serialized bytes, user-supplied partitions); these
tests verify corruption is *detected*, never silently mis-executed.
"""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSXMatrix, SSSMatrix
from repro.formats.csx.ctl import (
    build_pattern_table,
    decode_ctl,
    decode_pattern_table,
    encode_ctl,
    encode_pattern_table,
)
from repro.formats.csx.detect import detect_and_encode
from repro.parallel import ParallelSymmetricSpMV


@pytest.fixture(scope="module")
def encoded(sym_dense_small):
    rows, cols = np.nonzero(sym_dense_small)
    units, _ = detect_and_encode(
        rows.astype(np.int64),
        cols.astype(np.int64),
        sym_dense_small[rows, cols],
        sym_dense_small.shape[1],
    )
    table = build_pattern_table(units)
    ctl = encode_ctl(units, table)
    return units, table, ctl


def test_truncated_ctl_all_prefixes(encoded):
    """Every proper prefix of a ctl stream decodes to fewer units or
    raises — never to the same count with different content."""
    units, table, ctl = encoded
    inv = {i: p for p, i in table.items()}
    full = decode_ctl(ctl, inv)
    for cut in range(1, min(len(ctl), 40)):
        try:
            partial = decode_ctl(ctl[:-cut], inv)
        except ValueError:
            continue
        assert len(partial) < len(full)


def test_bitflip_in_ctl_detected_or_changes_decode(encoded):
    """Single-byte corruption either raises or yields different units
    (the decoder must not mask corruption)."""
    units, table, ctl = encoded
    inv = {i: p for p, i in table.items()}

    def snapshot(decoded):
        return [
            (
                u.pattern, u.row, u.col, u.length,
                tuple(u.cols) if u.cols is not None else None,
            )
            for u in decoded
        ]

    reference = snapshot(decode_ctl(ctl, inv))
    rng = np.random.default_rng(0)
    detected = 0
    for _ in range(25):
        pos = int(rng.integers(0, len(ctl)))
        flip = bytearray(ctl)
        flip[pos] ^= 1 << int(rng.integers(0, 8))
        try:
            got = snapshot(decode_ctl(bytes(flip), inv))
        except ValueError:
            detected += 1
            continue
        if got != reference:
            detected += 1
    assert detected >= 23  # corruption overwhelmingly visible


def test_pattern_table_corruption():
    table = build_pattern_table([])
    buf = encode_pattern_table(table)
    # Claim one more entry than present.
    bad = bytes([buf[0] + 1]) + buf[1:]
    with pytest.raises(ValueError):
        decode_pattern_table(bad)


def test_partitions_not_covering_rejected(sym_coo_medium):
    sss = SSSMatrix.from_coo(sym_coo_medium)
    with pytest.raises(ValueError):
        ParallelSymmetricSpMV(sss, [(0, 100), (100, 250)], "indexed")


def test_overlapping_partitions_rejected(sym_coo_medium):
    sss = SSSMatrix.from_coo(sym_coo_medium)
    with pytest.raises(ValueError):
        ParallelSymmetricSpMV(
            sss, [(0, 200), (150, 300)], "indexed"
        )


def test_nan_values_propagate_not_crash(sym_dense_small, rng):
    """NaN inputs flow through (IEEE semantics), never crash or hang."""
    dense = sym_dense_small.copy()
    coo = COOMatrix.from_dense(dense)
    sss = SSSMatrix.from_coo(coo)
    x = rng.standard_normal(coo.n_cols)
    x[3] = np.nan
    y = sss.spmv(x)
    assert np.isnan(y).any()
    assert y.shape == (coo.n_rows,)


def test_csx_rejects_nonfinite_free_matrix_ok(sym_dense_small, rng):
    """CSX encodes matrices with extreme magnitudes exactly (values are
    copied verbatim, never re-derived from the codec)."""
    dense = sym_dense_small.copy()
    dense[dense != 0] *= 1e300
    coo = COOMatrix.from_dense(dense)
    csx = CSXMatrix(coo)
    back = csx.to_coo().to_dense()
    assert np.array_equal(back, dense)


def test_mismatched_output_vector_rejected(sym_coo_medium, rng):
    sss = SSSMatrix.from_coo(sym_coo_medium)
    x = rng.standard_normal(sss.n_cols)
    with pytest.raises(ValueError):
        sss.spmv(x, np.zeros(sss.n_rows + 1))
    with pytest.raises(TypeError):
        sss.spmv(x, np.zeros(sss.n_rows, dtype=np.float32))
