"""Unit + property tests for the LEB128 varint codec."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.formats.csx.varint import (
    decode_varint,
    encode_varint,
    encode_varints,
    varint_size,
    varint_sizes,
)


def test_single_byte_values():
    for v in (0, 1, 127):
        buf = bytearray()
        encode_varint(v, buf)
        assert len(buf) == 1
        assert decode_varint(bytes(buf), 0) == (v, 1)


def test_multi_byte_boundaries():
    for v, size in [(128, 2), (16383, 2), (16384, 3), (2**21 - 1, 3)]:
        buf = bytearray()
        encode_varint(v, buf)
        assert len(buf) == size == varint_size(v)


def test_negative_rejected():
    with pytest.raises(ValueError):
        encode_varint(-1, bytearray())
    with pytest.raises(ValueError):
        varint_size(-5)


def test_truncated_decode_raises():
    buf = bytearray()
    encode_varint(300, buf)
    with pytest.raises(ValueError):
        decode_varint(bytes(buf[:1]), 0)
    with pytest.raises(ValueError):
        decode_varint(b"", 0)


def test_overlong_decode_raises():
    with pytest.raises(ValueError):
        decode_varint(b"\x80" * 10 + b"\x01", 0)


def test_encode_varints_sequence():
    buf = encode_varints([0, 127, 128, 99999])
    pos = 0
    out = []
    while pos < len(buf):
        v, pos = decode_varint(buf, pos)
        out.append(v)
    assert out == [0, 127, 128, 99999]


def test_varint_sizes_vectorized():
    values = np.array([0, 127, 128, 16383, 16384, 2**28])
    expected = [varint_size(int(v)) for v in values]
    assert np.array_equal(varint_sizes(values), expected)


def test_varint_sizes_rejects_negative():
    with pytest.raises(ValueError):
        varint_sizes(np.array([1, -2]))


@given(st.integers(min_value=0, max_value=2**63 - 1))
def test_roundtrip_property(value):
    buf = bytearray()
    encode_varint(value, buf)
    decoded, pos = decode_varint(bytes(buf), 0)
    assert decoded == value
    assert pos == len(buf) == varint_size(value)


@given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=50))
def test_sequence_roundtrip_property(values):
    buf = encode_varints(values)
    pos = 0
    out = []
    while pos < len(buf):
        v, pos = decode_varint(buf, pos)
        out.append(v)
    assert out == values
