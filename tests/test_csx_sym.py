"""Unit tests for CSX-Sym (paper Section IV-B)."""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSRMatrix, CSXSymMatrix, SSSMatrix
from repro.formats.csx.substructures import (
    PatternKey,
    PatternType,
    Unit,
    unit_coordinates,
)
from repro.formats.csx.sym import legalize_units


def test_spmv_matches_dense(sym_dense_medium, rng):
    coo = COOMatrix.from_dense(sym_dense_medium)
    csxs = CSXSymMatrix(coo)
    x = rng.standard_normal(csxs.n_cols)
    assert np.allclose(csxs.spmv(x), sym_dense_medium @ x)


def test_rejects_unsymmetric():
    coo = COOMatrix((2, 2), [0], [1], [1.0])
    with pytest.raises(ValueError):
        CSXSymMatrix(coo)


def test_compresses_beyond_sss(sym_coo_medium):
    sss = SSSMatrix.from_coo(sym_coo_medium)
    csxs = CSXSymMatrix(sym_coo_medium)
    assert csxs.size_bytes() < sss.size_bytes()


def test_compression_ratio_bounds(sym_coo_medium):
    """CR must sit between SSS's (~50%) and the indexless maximum."""
    csr = CSRMatrix.from_coo(sym_coo_medium)
    csxs = CSXSymMatrix(sym_coo_medium)
    cr = csxs.compression_ratio_vs(csr)
    n, nnz = csxs.n_rows, csxs.nnz
    ideal = 8 * n + 8 * (nnz - n) / 2  # values only, no indexing
    cr_max = 1 - ideal / csr.size_bytes()
    assert 0.45 < cr <= cr_max + 1e-9


def test_partitioned_spmv(sym_dense_medium, rng):
    coo = COOMatrix.from_dense(sym_dense_medium)
    parts = [(0, 60), (60, 170), (170, 300)]
    csxs = CSXSymMatrix(coo, partitions=parts)
    x = rng.standard_normal(coo.n_cols)
    y = np.zeros(coo.n_rows)
    for s, e in parts:
        local = np.zeros(coo.n_rows)
        csxs.spmv_partition(x, y, local, s, e)
        y += local
    assert np.allclose(y, sym_dense_medium @ x)


def test_partition_local_direct_routing(sym_dense_medium, rng):
    coo = COOMatrix.from_dense(sym_dense_medium)
    parts = [(0, 150), (150, 300)]
    csxs = CSXSymMatrix(coo, partitions=parts)
    x = rng.standard_normal(coo.n_cols)
    direct = np.zeros(coo.n_rows)
    local = np.zeros(coo.n_rows)
    csxs.spmv_partition(x, direct, local, 150, 300)
    assert np.all(local[150:] == 0.0)
    assert np.all(direct[:150] == 0.0)


def test_unknown_partition_rejected(sym_coo_medium, rng):
    csxs = CSXSymMatrix(sym_coo_medium, partitions=[(0, 150), (150, 300)])
    x = rng.standard_normal(csxs.n_cols)
    with pytest.raises(ValueError):
        csxs.spmv_partition(
            x, np.zeros(300), np.zeros(300), 0, 100
        )


def test_legality_filter_rejects_straddling_units(sym_dense_medium):
    coo = COOMatrix.from_dense(sym_dense_medium)
    parts = [(0, 100), (100, 200), (200, 300)]
    filtered = CSXSymMatrix(coo, partitions=parts)
    unfiltered = CSXSymMatrix(
        coo, partitions=parts, legality_filter=False
    )
    # The filter can only lower (or keep) substructure coverage.
    assert (
        filtered.substructure_coverage()
        <= unfiltered.substructure_coverage() + 1e-12
    )
    # And no surviving substructure may straddle its boundary.
    for p in filtered.partitions:
        for u in p.units:
            if u.pattern.is_delta:
                continue
            _, cols = unit_coordinates(u)
            straddles = cols.min() < p.row_start <= cols.max()
            assert not straddles


def test_legalize_units_splits_straddler():
    u = Unit(
        PatternKey(PatternType.HORIZONTAL, (1,)),
        row=20, col=8, length=5, values=np.arange(5.0),
    )
    out, rejected = legalize_units([u], boundary=10)
    assert rejected == 1
    assert all(v.pattern.is_delta for v in out)
    rows = np.concatenate([unit_coordinates(v)[0] for v in out])
    cols = np.concatenate([unit_coordinates(v)[1] for v in out])
    assert np.array_equal(np.sort(cols), [8, 9, 10, 11, 12])
    assert np.all(rows == 20)
    vals = np.concatenate([v.values for v in out])
    assert np.array_equal(np.sort(vals), np.arange(5.0))


def test_legalize_units_keeps_legal():
    legal = Unit(
        PatternKey(PatternType.HORIZONTAL, (1,)),
        row=20, col=12, length=5, values=np.ones(5),
    )
    out, rejected = legalize_units([legal], boundary=10)
    assert rejected == 0 and out == [legal]


def test_legalize_vertical_unit_never_straddles():
    # A vertical unit touches a single column: always on one side.
    u = Unit(
        PatternKey(PatternType.VERTICAL, (1,)),
        row=20, col=9, length=4, values=np.arange(4.0),
    )
    out, rejected = legalize_units([u], boundary=10)
    assert rejected == 0 and out == [u]


def test_legalize_diagonal_unit_split_per_row():
    u = Unit(
        PatternKey(PatternType.DIAGONAL, (1,)),
        row=20, col=8, length=4, values=np.arange(4.0),
    )
    out, rejected = legalize_units([u], boundary=10)
    assert rejected == 1
    assert len(out) == 4  # one single-element delta unit per row
    assert all(v.length == 1 for v in out)
    rows = np.concatenate([unit_coordinates(v)[0] for v in out])
    assert np.array_equal(np.sort(rows), [20, 21, 22, 23])


def test_nnz_and_sizes(sym_coo_medium):
    csxs = CSXSymMatrix(sym_coo_medium)
    assert csxs.nnz == sym_coo_medium.nnz
    assert (
        csxs.size_bytes()
        == 8 * csxs.n_rows + 8 * csxs.nnz_lower + csxs.ctl_size_bytes()
    )


def test_partition_conflict_rows(sym_coo_medium):
    parts = [(0, 150), (150, 300)]
    csxs = CSXSymMatrix(sym_coo_medium, partitions=parts)
    sss = SSSMatrix.from_coo(sym_coo_medium)
    assert np.array_equal(
        csxs.partition_conflict_rows(150, 300),
        sss.partition_conflict_rows(150, 300),
    )


def test_to_coo_roundtrip(sym_coo_medium):
    csxs = CSXSymMatrix(
        sym_coo_medium, partitions=[(0, 100), (100, 300)]
    )
    assert np.array_equal(
        csxs.to_coo().to_dense(), sym_coo_medium.to_dense()
    )


def test_spmv_equals_sss(sym_coo_medium, rng):
    """CSX-Sym and SSS are different encodings of the same operator."""
    sss = SSSMatrix.from_coo(sym_coo_medium)
    csxs = CSXSymMatrix(sym_coo_medium)
    x = rng.standard_normal(csxs.n_cols)
    assert np.allclose(csxs.spmv(x), sss.spmv(x))
