"""Unit tests for the SSS symmetric skyline format (paper eq. 2, Alg. 2/3)."""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSRMatrix, SSSMatrix


def test_from_coo_matches_dense(sym_dense_small):
    sss = SSSMatrix.from_dense(sym_dense_small)
    assert np.array_equal(sss.to_dense(), sym_dense_small)


def test_rejects_unsymmetric():
    coo = COOMatrix((2, 2), [0], [1], [1.0])
    with pytest.raises(ValueError):
        SSSMatrix.from_coo(coo)


def test_rejects_rectangular():
    coo = COOMatrix((2, 3), [0], [1], [1.0])
    with pytest.raises(ValueError):
        SSSMatrix.from_coo(coo)


def test_spmv_matches_dense(sym_dense_medium, rng):
    sss = SSSMatrix.from_dense(sym_dense_medium)
    x = rng.standard_normal(sss.n_cols)
    assert np.allclose(sss.spmv(x), sym_dense_medium @ x)


def test_size_bytes_equation_2(sym_dense_small):
    """S_SSS = 6*(NNZ + N) + 4 when the diagonal is full."""
    sss = SSSMatrix.from_dense(sym_dense_small)
    n = sss.n_rows
    nnz = sss.nnz  # expanded count; diagonal is full in the fixture
    assert np.all(sss.dvalues != 0)
    assert sss.size_bytes() == 6 * (nnz + n) + 4


def test_size_roughly_half_of_csr(sym_coo_medium):
    csr = CSRMatrix.from_coo(sym_coo_medium)
    sss = SSSMatrix.from_coo(sym_coo_medium)
    ratio = sss.size_bytes() / csr.size_bytes()
    assert 0.4 < ratio < 0.65  # "almost reducing to the half"


def test_nnz_counts_expanded(sym_dense_small):
    sss = SSSMatrix.from_dense(sym_dense_small)
    assert sss.nnz == np.count_nonzero(sym_dense_small)
    assert sss.stored_entries == sss.n_rows + sss.nnz_lower


def test_missing_diagonal_entries():
    dense = np.array(
        [[0.0, 2.0, 0.0], [2.0, 5.0, 1.0], [0.0, 1.0, 0.0]]
    )
    sss = SSSMatrix.from_dense(dense)
    assert sss.dvalues[0] == 0.0 and sss.dvalues[2] == 0.0
    x = np.array([1.0, -1.0, 2.0])
    assert np.allclose(sss.spmv(x), dense @ x)


def test_strictly_lower_enforced():
    with pytest.raises(ValueError):
        SSSMatrix(
            (2, 2),
            dvalues=np.ones(2),
            rowptr=np.array([0, 1, 1], dtype=np.int32),
            colind=np.array([1], dtype=np.int32),  # upper entry in row 0
            values=np.array([1.0]),
        )


def test_partition_kernel_covers_matrix(sym_dense_medium, rng):
    sss = SSSMatrix.from_dense(sym_dense_medium)
    x = rng.standard_normal(sss.n_cols)
    parts = [(0, 75), (75, 140), (140, 280), (280, 300)]
    y = np.zeros(sss.n_rows)
    for s, e in parts:
        local = np.zeros(sss.n_rows)
        sss.spmv_partition(x, y, local, s, e)
        y += local
    assert np.allclose(y, sym_dense_medium @ x)


def test_partition_local_writes_only_before_start(sym_dense_medium, rng):
    sss = SSSMatrix.from_dense(sym_dense_medium)
    x = rng.standard_normal(sss.n_cols)
    direct = np.zeros(sss.n_rows)
    local = np.zeros(sss.n_rows)
    sss.spmv_partition(x, direct, local, 100, 200)
    assert np.all(local[100:] == 0.0)
    # Direct writes stay inside the partition.
    assert np.all(direct[:100] == 0.0)
    assert np.all(direct[200:] == 0.0)


def test_partition_conflict_rows(sym_dense_medium):
    sss = SSSMatrix.from_dense(sym_dense_medium)
    conflicts = sss.partition_conflict_rows(100, 200)
    lo, hi = sss.rowptr[100], sss.rowptr[200]
    expected = np.unique(
        sss.colind[lo:hi][sss.colind[lo:hi] < 100]
    )
    assert np.array_equal(conflicts, expected)
    assert np.all(conflicts < 100)


def test_conflict_rows_match_local_nonzeros(sym_dense_medium, rng):
    """The index enumerates exactly the local vector's non-zeros."""
    sss = SSSMatrix.from_dense(sym_dense_medium)
    x = rng.uniform(1.0, 2.0, sss.n_cols)  # positive: no cancellation
    direct = np.zeros(sss.n_rows)
    local = np.zeros(sss.n_rows)
    sss.spmv_partition(x, direct, local, 150, 300)
    written = np.flatnonzero(local)
    assert np.array_equal(written, sss.partition_conflict_rows(150, 300))


def test_expanded_row_nnz(sym_dense_small):
    sss = SSSMatrix.from_dense(sym_dense_small)
    expected = (sym_dense_small != 0).sum(axis=1)
    assert np.array_equal(sss.expanded_row_nnz(), expected)


def test_to_coo_roundtrip(sym_coo_medium):
    sss = SSSMatrix.from_coo(sym_coo_medium)
    assert np.array_equal(
        sss.to_coo().to_dense(), sym_coo_medium.to_dense()
    )


def test_spmv_against_scipy(sym_coo_medium, rng):
    sss = SSSMatrix.from_coo(sym_coo_medium)
    sp = sym_coo_medium.to_scipy()
    x = rng.standard_normal(sss.n_cols)
    assert np.allclose(sss.spmv(x), sp @ x)


def test_skip_symmetry_check_allows_fast_path(sym_coo_small):
    sss = SSSMatrix.from_coo(sym_coo_small, check_symmetry=False)
    assert sss.nnz == sym_coo_small.nnz
