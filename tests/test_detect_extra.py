"""Additional CSX detection edge cases: sampling determinism, pattern
budget limits, gain thresholds."""

import numpy as np
import pytest

from repro.formats.csx.ctl import build_pattern_table
from repro.formats.csx.detect import (
    DetectionConfig,
    detect_and_encode,
    select_patterns,
)
from repro.formats.csx.detect import PatternStats
from repro.formats.csx.substructures import (
    FIRST_DYNAMIC_ID,
    MAX_PATTERN_ID,
    PatternKey,
    PatternType,
    Unit,
)


def _grid_elements(n=60, stride=1):
    rows, cols = [], []
    for r in range(n):
        for k in range(6):
            rows.append(r)
            cols.append((r + k * stride) % n)
    rows = np.array(rows, dtype=np.int64)
    cols = np.array(cols, dtype=np.int64)
    keys = rows * n + cols
    _, idx = np.unique(keys, return_index=True)
    return rows[idx], cols[idx], n


def test_sampling_is_deterministic():
    rows, cols, n = _grid_elements()
    config = DetectionConfig(sampling_fraction=0.4, sampling_window=8,
                             sampling_seed=7)
    a, _ = detect_and_encode(rows, cols, np.ones(rows.size), n, config)
    b, _ = detect_and_encode(rows, cols, np.ones(rows.size), n, config)
    assert [(u.pattern, u.row, u.col, u.length) for u in a] == [
        (u.pattern, u.row, u.col, u.length) for u in b
    ]


def test_different_seed_may_change_selection_not_correctness():
    rows, cols, n = _grid_elements()
    for seed in (1, 2, 3):
        config = DetectionConfig(
            sampling_fraction=0.3, sampling_window=8, sampling_seed=seed
        )
        units, report = detect_and_encode(
            rows, cols, np.ones(rows.size), n, config
        )
        assert sum(u.length for u in units) == rows.size


def test_min_coverage_threshold_prunes():
    rows, cols, n = _grid_elements()
    strict = DetectionConfig(min_coverage=0.99)
    units, report = detect_and_encode(
        rows, cols, np.ones(rows.size), n, strict
    )
    assert report.selected == []  # nothing covers 99% alone
    assert all(u.pattern.is_delta for u in units)


def test_select_patterns_respects_id_budget():
    budget = MAX_PATTERN_ID - FIRST_DYNAMIC_ID + 1
    stats = {}
    for d in range(1, budget + 10):
        key = PatternKey(PatternType.HORIZONTAL, (d,))
        stats[key] = PatternStats(key, covered=10_000 - d, n_units=10)
    config = DetectionConfig(min_coverage=0.0)
    selected = select_patterns(stats, 100_000, 100_000, config)
    assert len(selected) == budget


def test_pattern_table_overflow_raises():
    units = [
        Unit(PatternKey(PatternType.HORIZONTAL, (d,)), row=d, col=0,
             length=4)
        for d in range(1, MAX_PATTERN_ID - FIRST_DYNAMIC_ID + 3)
    ]
    with pytest.raises(ValueError, match="overflow"):
        build_pattern_table(units)


def test_zero_gain_patterns_not_selected():
    key = PatternKey(PatternType.VERTICAL, (1,))
    stats = {key: PatternStats(key, covered=3, n_units=1)}
    config = DetectionConfig(min_coverage=0.0)
    assert select_patterns(stats, 100, 100, config) == []


def test_stride_candidates_capped():
    """At most max_deltas_per_type instantiations per orientation."""
    rows, cols = [], []
    r = 0
    for stride in (1, 2, 3, 4, 5):
        for run in range(3):
            for k in range(8):
                rows.append(r)
                cols.append(10 + k * stride)
            r += 1
    rows = np.array(rows, dtype=np.int64)
    cols = np.array(cols, dtype=np.int64)
    config = DetectionConfig(max_deltas_per_type=2, enable_blocks=False,
                             enable_vertical=False,
                             enable_diagonal=False,
                             enable_anti_diagonal=False)
    units, report = detect_and_encode(
        rows, cols, np.ones(rows.size), 200, config
    )
    horiz = {
        u.pattern.params for u in units
        if u.pattern.type is PatternType.HORIZONTAL
    }
    assert len(horiz) <= 2
    assert sum(u.length for u in units) == rows.size
