"""Unit tests for the colorful (conflict-free) symmetric SpM×V."""

import numpy as np
import pytest

from repro.formats import COOMatrix, SSSMatrix
from repro.machine import DUNNINGTON
from repro.matrices import banded_random, dense_clustered
from repro.parallel import (
    ColoredSymmetricSpMV,
    coloring_stats,
    distance2_coloring,
    predict_colored_time,
)
from repro.parallel.coloring import verify_coloring


@pytest.fixture(scope="module")
def sparse_sss():
    rng = np.random.default_rng(3)
    return SSSMatrix.from_coo(banded_random(600, 6.0, 25, rng))


def test_coloring_is_valid(sparse_sss):
    colors = distance2_coloring(sparse_sss)
    assert colors.min() >= 0
    assert verify_coloring(sparse_sss, colors)


def test_coloring_valid_on_scattered(rng):
    coo = banded_random(400, 8.0, 399, np.random.default_rng(9))
    sss = SSSMatrix.from_coo(coo)
    colors = distance2_coloring(sss)
    assert verify_coloring(sss, colors)


def test_invalid_coloring_detected(sparse_sss):
    """verify_coloring must actually catch conflicts."""
    all_same = np.zeros(sparse_sss.n_rows, dtype=np.int64)
    assert not verify_coloring(sparse_sss, all_same)


def test_diagonal_matrix_needs_one_color():
    sss = SSSMatrix.from_dense(np.diag(np.arange(1.0, 9.0)))
    colors = distance2_coloring(sss)
    assert coloring_stats(colors).n_colors == 1


def test_color_count_grows_with_degree(rng):
    rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
    sparse = SSSMatrix.from_coo(banded_random(500, 5.0, 30, rng1))
    dense = SSSMatrix.from_coo(
        dense_clustered(500, 40.0, 60, 8, rng2)
    )
    n_sparse = coloring_stats(distance2_coloring(sparse)).n_colors
    n_dense = coloring_stats(distance2_coloring(dense)).n_colors
    assert n_dense > 2 * n_sparse  # "geometry limits the potential"


def test_colored_spmv_matches_dense(sym_dense_medium, rng):
    coo = COOMatrix.from_dense(sym_dense_medium)
    sss = SSSMatrix.from_coo(coo)
    kernel = ColoredSymmetricSpMV(sss)
    x = rng.standard_normal(coo.n_cols)
    assert np.allclose(kernel(x), sym_dense_medium @ x)


def test_colored_spmv_with_precomputed_colors(sparse_sss, rng):
    colors = distance2_coloring(sparse_sss)
    kernel = ColoredSymmetricSpMV(sparse_sss, colors)
    x = rng.standard_normal(sparse_sss.n_cols)
    assert np.allclose(kernel(x), sparse_sss.spmv(x))


def test_colored_output_reuse(sparse_sss, rng):
    kernel = ColoredSymmetricSpMV(sparse_sss)
    x = rng.standard_normal(sparse_sss.n_cols)
    y = np.full(sparse_sss.n_rows, 7.0)
    out = kernel(x, y)
    assert out is y
    assert np.allclose(y, sparse_sss.spmv(x))


def test_bad_colors_shape_rejected(sparse_sss):
    with pytest.raises(ValueError):
        ColoredSymmetricSpMV(sparse_sss, np.zeros(3, dtype=np.int64))


def test_stats_fields(sparse_sss):
    stats = coloring_stats(distance2_coloring(sparse_sss))
    assert stats.n_colors >= 1
    assert stats.smallest_class <= stats.mean_class <= stats.largest_class
    assert stats.parallelism_bound == stats.mean_class


def test_predicted_time_worse_than_indexed(sparse_sss):
    """The paper: the colorful method 'could not achieve a performance
    gain over the typical local vectors method'."""
    from repro.machine import predict_spmv
    from repro.parallel import partition_nnz_balanced

    colors = distance2_coloring(sparse_sss)
    t_colored = predict_colored_time(sparse_sss, colors, DUNNINGTON, 24)
    parts = partition_nnz_balanced(sparse_sss.expanded_row_nnz(), 24)
    t_indexed = predict_spmv(
        sparse_sss, parts, DUNNINGTON, reduction="indexed"
    ).total
    assert t_colored > t_indexed


# ----------------------------------------------------------------------
# Conflict-free schedule (the "coloring" reduction strategy)
# ----------------------------------------------------------------------
from repro.formats import CSRMatrix  # noqa: E402
from repro.machine import predict_spmv  # noqa: E402
from repro.parallel import (  # noqa: E402
    ColoringReduction,
    ColoringUnsupportedError,
    ParallelSymmetricSpMV,
    build_coloring_schedule,
    make_reduction,
    partition_nnz_balanced,
)


def _parts(sss, p):
    return partition_nnz_balanced(sss.expanded_row_nnz(), p)


def test_schedule_covers_every_row_exactly_once(sparse_sss):
    sched = build_coloring_schedule(sparse_sss, 4)
    seen = np.concatenate([
        seg.rows
        for step in sched.steps
        for task_segs in step
        for seg in task_segs
    ])
    assert seen.size == sched.n_rows
    assert np.unique(seen).size == seen.size
    assert 0 < sched.n_nonempty_rows <= sched.n_rows


def test_schedule_deterministic(sparse_sss):
    a = build_coloring_schedule(sparse_sss, 4)
    b = build_coloring_schedule(sparse_sss, 4)
    assert a.n_colors == b.n_colors and a.n_barriers == b.n_barriers
    for sa, sb in zip(a.steps, b.steps):
        for ta, tb in zip(sa, sb):
            for ga, gb in zip(ta, tb):
                assert np.array_equal(ga.rows, gb.rows)
                assert np.array_equal(ga.cols, gb.cols)


def test_coloring_handles_empty_rows_and_disconnection():
    dense = np.zeros((12, 12))
    dense[1, 0] = dense[0, 1] = 2.0  # component A
    dense[7, 6] = dense[6, 7] = 3.0  # component B, disconnected
    np.fill_diagonal(dense, [1, 0, 0, 5, 0, 0, 1, 1, 0, 0, 0, 2.0])
    sss = SSSMatrix.from_dense(dense)
    colors = distance2_coloring(sss)
    assert verify_coloring(sss, colors)
    sched = build_coloring_schedule(sss, 3)
    x = np.random.default_rng(0).standard_normal(12)
    y = np.zeros(12)
    from repro.parallel import Executor
    from repro.parallel.coloring import compile_colored_steps, run_colored_steps

    steps = compile_colored_steps(sched, y, lambda: x)
    run_colored_steps(Executor("serial"), steps)
    assert np.allclose(y, dense @ x)


def test_coloring_reduction_factory_and_footprint(sparse_sss):
    red = make_reduction("coloring", sparse_sss, _parts(sparse_sss, 4))
    assert isinstance(red, ColoringReduction)
    assert red.conflict_free
    assert all(l is None for l in red.allocate_locals())
    assert red.zeroed_elements() == 0
    fp = red.footprint()
    assert fp.reduction_reads == 0 and fp.reduction_writes == 0
    assert fp.ws_measured_bytes == 0.0


def test_coloring_rejected_without_lower_triple():
    csr = CSRMatrix.from_coo(
        banded_random(50, 3.0, 10, np.random.default_rng(1))
    )
    with pytest.raises((ColoringUnsupportedError, AttributeError)):
        make_reduction("coloring", csr, [(0, 50)])


def test_driver_coloring_matches_serial_kernel(sparse_sss, rng):
    parts = _parts(sparse_sss, 4)
    x = rng.standard_normal(sparse_sss.n_cols)
    drv = ParallelSymmetricSpMV(sparse_sss, parts, "coloring")
    assert np.allclose(drv(x), sparse_sss.spmv(x))


def test_predicted_coloring_has_zero_reduce_and_a_barrier(sparse_sss):
    parts = _parts(sparse_sss, 8)
    pt = predict_spmv(sparse_sss, parts, DUNNINGTON, reduction="coloring")
    assert pt.t_reduce == 0.0
    assert pt.t_barrier > 0.0
    assert pt.total == pt.t_mult + pt.t_barrier
