"""Unit tests for the colorful (conflict-free) symmetric SpM×V."""

import numpy as np
import pytest

from repro.formats import COOMatrix, SSSMatrix
from repro.machine import DUNNINGTON
from repro.matrices import banded_random, dense_clustered
from repro.parallel import (
    ColoredSymmetricSpMV,
    coloring_stats,
    distance2_coloring,
    predict_colored_time,
)
from repro.parallel.coloring import verify_coloring


@pytest.fixture(scope="module")
def sparse_sss():
    rng = np.random.default_rng(3)
    return SSSMatrix.from_coo(banded_random(600, 6.0, 25, rng))


def test_coloring_is_valid(sparse_sss):
    colors = distance2_coloring(sparse_sss)
    assert colors.min() >= 0
    assert verify_coloring(sparse_sss, colors)


def test_coloring_valid_on_scattered(rng):
    coo = banded_random(400, 8.0, 399, np.random.default_rng(9))
    sss = SSSMatrix.from_coo(coo)
    colors = distance2_coloring(sss)
    assert verify_coloring(sss, colors)


def test_invalid_coloring_detected(sparse_sss):
    """verify_coloring must actually catch conflicts."""
    all_same = np.zeros(sparse_sss.n_rows, dtype=np.int64)
    assert not verify_coloring(sparse_sss, all_same)


def test_diagonal_matrix_needs_one_color():
    sss = SSSMatrix.from_dense(np.diag(np.arange(1.0, 9.0)))
    colors = distance2_coloring(sss)
    assert coloring_stats(colors).n_colors == 1


def test_color_count_grows_with_degree(rng):
    rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
    sparse = SSSMatrix.from_coo(banded_random(500, 5.0, 30, rng1))
    dense = SSSMatrix.from_coo(
        dense_clustered(500, 40.0, 60, 8, rng2)
    )
    n_sparse = coloring_stats(distance2_coloring(sparse)).n_colors
    n_dense = coloring_stats(distance2_coloring(dense)).n_colors
    assert n_dense > 2 * n_sparse  # "geometry limits the potential"


def test_colored_spmv_matches_dense(sym_dense_medium, rng):
    coo = COOMatrix.from_dense(sym_dense_medium)
    sss = SSSMatrix.from_coo(coo)
    kernel = ColoredSymmetricSpMV(sss)
    x = rng.standard_normal(coo.n_cols)
    assert np.allclose(kernel(x), sym_dense_medium @ x)


def test_colored_spmv_with_precomputed_colors(sparse_sss, rng):
    colors = distance2_coloring(sparse_sss)
    kernel = ColoredSymmetricSpMV(sparse_sss, colors)
    x = rng.standard_normal(sparse_sss.n_cols)
    assert np.allclose(kernel(x), sparse_sss.spmv(x))


def test_colored_output_reuse(sparse_sss, rng):
    kernel = ColoredSymmetricSpMV(sparse_sss)
    x = rng.standard_normal(sparse_sss.n_cols)
    y = np.full(sparse_sss.n_rows, 7.0)
    out = kernel(x, y)
    assert out is y
    assert np.allclose(y, sparse_sss.spmv(x))


def test_bad_colors_shape_rejected(sparse_sss):
    with pytest.raises(ValueError):
        ColoredSymmetricSpMV(sparse_sss, np.zeros(3, dtype=np.int64))


def test_stats_fields(sparse_sss):
    stats = coloring_stats(distance2_coloring(sparse_sss))
    assert stats.n_colors >= 1
    assert stats.smallest_class <= stats.mean_class <= stats.largest_class
    assert stats.parallelism_bound == stats.mean_class


def test_predicted_time_worse_than_indexed(sparse_sss):
    """The paper: the colorful method 'could not achieve a performance
    gain over the typical local vectors method'."""
    from repro.machine import predict_spmv
    from repro.parallel import partition_nnz_balanced

    colors = distance2_coloring(sparse_sss)
    t_colored = predict_colored_time(sparse_sss, colors, DUNNINGTON, 24)
    parts = partition_nnz_balanced(sparse_sss.expanded_row_nnz(), 24)
    t_indexed = predict_spmv(
        sparse_sss, parts, DUNNINGTON, reduction="indexed"
    ).total
    assert t_colored > t_indexed
