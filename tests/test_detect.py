"""Unit tests for CSX substructure detection and greedy encoding."""

import numpy as np
import pytest

from repro.formats.csx.detect import (
    DetectionConfig,
    DetectionReport,
    collect_pattern_stats,
    detect_and_encode,
)
from repro.formats.csx.substructures import (
    PatternKey,
    PatternType,
    unit_coordinates,
)


def coords_of(units):
    rows, cols = [], []
    for u in units:
        r, c = unit_coordinates(u)
        rows.append(r)
        cols.append(c)
    return np.concatenate(rows), np.concatenate(cols)


def assert_exact_cover(units, rows, cols):
    """Every element encoded exactly once."""
    ur, uc = coords_of(units)
    n_cols = int(max(cols.max(), uc.max())) + 1
    want = np.sort(rows * n_cols + cols)
    got = np.sort(ur * n_cols + uc)
    assert np.array_equal(want, got)


def test_horizontal_run_detected():
    rows = np.zeros(10, dtype=np.int64)
    cols = np.arange(10, dtype=np.int64)
    vals = np.ones(10)
    units, report = detect_and_encode(rows, cols, vals, 100)
    assert any(
        u.pattern.type is PatternType.HORIZONTAL and u.length == 10
        for u in units
    )
    assert_exact_cover(units, rows, cols)
    assert report.coverage_fraction() == 1.0


def test_vertical_run_detected():
    rows = np.arange(8, dtype=np.int64)
    cols = np.full(8, 3, dtype=np.int64)
    units, _ = detect_and_encode(rows, cols, np.ones(8), 100)
    assert any(
        u.pattern.type is PatternType.VERTICAL and u.length == 8
        for u in units
    )
    assert_exact_cover(units, rows, cols)


def test_diagonal_run_detected():
    k = np.arange(8, dtype=np.int64)
    units, _ = detect_and_encode(10 + k, 2 + k, np.ones(8), 100)
    assert any(u.pattern.type is PatternType.DIAGONAL for u in units)


def test_anti_diagonal_run_detected():
    k = np.arange(8, dtype=np.int64)
    units, _ = detect_and_encode(10 + k, 30 - k, np.ones(8), 100)
    assert any(u.pattern.type is PatternType.ANTI_DIAGONAL for u in units)


def test_strided_run_detected():
    rows = np.zeros(8, dtype=np.int64)
    cols = np.arange(0, 24, 3, dtype=np.int64)
    units, _ = detect_and_encode(rows, cols, np.ones(8), 100)
    horiz = [u for u in units if u.pattern.type is PatternType.HORIZONTAL]
    assert horiz and horiz[0].pattern.params == (3,)


def test_block_detected():
    rr = np.repeat(np.arange(3, dtype=np.int64), 3) + 5
    cc = np.tile(np.arange(3, dtype=np.int64), 3) + 7
    units, _ = detect_and_encode(rr, cc, np.ones(9), 100)
    assert any(
        u.pattern == PatternKey(PatternType.BLOCK, (3, 3)) for u in units
    )
    assert_exact_cover(units, rr, cc)


def test_scattered_elements_become_delta_units():
    rng = np.random.default_rng(3)
    rows = np.repeat(np.arange(20, dtype=np.int64), 2)
    cols = np.concatenate(
        [np.sort(rng.choice(1000, 2, replace=False)) for _ in range(20)]
    ).astype(np.int64)
    units, report = detect_and_encode(rows, cols, np.ones(40), 1000)
    assert all(u.pattern.is_delta for u in units)
    assert_exact_cover(units, rows, cols)


def test_values_attached_in_unit_order():
    rows = np.zeros(6, dtype=np.int64)
    cols = np.arange(6, dtype=np.int64)
    vals = np.arange(6, dtype=np.float64) * 1.5
    units, _ = detect_and_encode(rows, cols, vals, 10)
    for u in units:
        ur, uc = unit_coordinates(u)
        assert np.array_equal(u.values, uc * 1.5)


def test_each_element_encoded_once_mixed_pattern():
    """Overlapping candidates (a block inside long rows) must not
    double-encode elements."""
    rows, cols = [], []
    for r in range(4):
        for c in range(12):
            rows.append(r)
            cols.append(c)
    rows = np.array(rows, dtype=np.int64)
    cols = np.array(cols, dtype=np.int64)
    units, _ = detect_and_encode(rows, cols, np.ones(rows.size), 20)
    assert_exact_cover(units, rows, cols)


def test_empty_input():
    units, report = detect_and_encode(
        np.zeros(0, dtype=np.int64),
        np.zeros(0, dtype=np.int64),
        np.zeros(0),
        10,
    )
    assert units == [] and report.total_elements == 0
    assert report.coverage_fraction() == 0.0


def test_min_run_len_respected():
    config = DetectionConfig(min_run_len=6)
    rows = np.zeros(4, dtype=np.int64)
    cols = np.arange(4, dtype=np.int64)
    units, _ = detect_and_encode(rows, cols, np.ones(4), 10, config)
    assert all(u.pattern.is_delta for u in units)


def test_disabled_orientations():
    config = DetectionConfig(
        enable_horizontal=False,
        enable_vertical=False,
        enable_diagonal=False,
        enable_anti_diagonal=False,
        enable_blocks=False,
    )
    rows = np.zeros(10, dtype=np.int64)
    cols = np.arange(10, dtype=np.int64)
    units, report = detect_and_encode(rows, cols, np.ones(10), 20, config)
    assert all(u.pattern.is_delta for u in units)
    assert report.coverage_fraction() == 0.0


def test_long_run_split_at_unit_size():
    rows = np.zeros(600, dtype=np.int64)
    cols = np.arange(600, dtype=np.int64)
    units, _ = detect_and_encode(rows, cols, np.ones(600), 1000)
    horiz = [u for u in units if u.pattern.type is PatternType.HORIZONTAL]
    assert sum(u.length for u in horiz) >= 255  # split, not dropped
    assert all(u.length <= 255 for u in units)
    assert_exact_cover(units, rows, cols)


def test_sampling_still_encodes_everything():
    rng = np.random.default_rng(5)
    n = 200
    rows = np.repeat(np.arange(n, dtype=np.int64), 5)
    cols = (rows + np.tile(np.arange(5, dtype=np.int64), n)) % 1000
    order = np.lexsort((cols, rows))
    keys = rows * 1000 + cols
    _, uniq_idx = np.unique(keys, return_index=True)
    rows, cols = rows[uniq_idx], cols[uniq_idx]
    config = DetectionConfig(sampling_fraction=0.3, sampling_window=16)
    units, report = detect_and_encode(
        rows, cols, np.ones(rows.size), 1000, config
    )
    assert report.sampled_elements < report.total_elements
    assert_exact_cover(units, rows, cols)


def test_sampling_fraction_validated():
    config = DetectionConfig(sampling_fraction=0.0)
    with pytest.raises(ValueError):
        detect_and_encode(
            np.array([0], dtype=np.int64),
            np.array([0], dtype=np.int64),
            np.ones(1),
            4,
            config,
        )


def test_stats_scan_counts(sym_coo_small):
    report = DetectionReport()
    config = DetectionConfig()
    lower = sym_coo_small.lower_triangle(strict=True)
    collect_pattern_stats(
        lower.rows.astype(np.int64),
        lower.cols.astype(np.int64),
        sym_coo_small.n_cols,
        config,
        report,
    )
    # 4 orientations + len(block_shapes) block scans over all elements.
    expected = lower.nnz * (4 + len(config.block_shapes))
    assert report.elements_scanned == expected


def test_units_sorted_row_major():
    rng = np.random.default_rng(9)
    n = 50
    dense = (rng.random((n, n)) < 0.15).astype(float)
    rows, cols = np.nonzero(dense)
    units, _ = detect_and_encode(
        rows.astype(np.int64), cols.astype(np.int64),
        np.ones(rows.size), n,
    )
    anchors = [(u.row, u.col) for u in units]
    assert anchors == sorted(anchors)
