"""Unit tests for the CSB / CSB-Sym comparator formats."""

import numpy as np
import pytest

from repro.formats import CSBMatrix, CSBSymMatrix, COOMatrix, CSRMatrix
from repro.formats.csb import default_beta
from repro.matrices import banded_random
from repro.parallel import ParallelCSBSymSpMV, predict_csb_sym_time
from repro.machine import DUNNINGTON


def test_default_beta_power_of_two():
    for n in (1, 5, 100, 4097, 10**6):
        beta = default_beta(n)
        assert beta & (beta - 1) == 0
        assert beta * beta >= n or beta == 1 << 16


def test_csb_spmv_matches_dense(sym_dense_medium, rng):
    coo = COOMatrix.from_dense(sym_dense_medium)
    for beta in (16, 64, 256):
        csb = CSBMatrix(coo, beta=beta)
        x = rng.standard_normal(coo.n_cols)
        assert np.allclose(csb.spmv(x), sym_dense_medium @ x), beta


def test_csb_unsymmetric_matrix(rng):
    dense = rng.random((50, 50))
    dense[dense < 0.8] = 0.0
    coo = COOMatrix.from_dense(dense)
    csb = CSBMatrix(coo, beta=16)
    x = rng.standard_normal(50)
    assert np.allclose(csb.spmv(x), dense @ x)


def test_csb_roundtrip(sym_coo_medium):
    csb = CSBMatrix(sym_coo_medium, beta=32)
    assert np.allclose(
        csb.to_coo().to_dense(), sym_coo_medium.to_dense()
    )


def test_csb_size_smaller_than_csr(sym_coo_medium):
    csr = CSRMatrix.from_coo(sym_coo_medium)
    csb = CSBMatrix(sym_coo_medium, beta=64)
    assert csb.size_bytes() < csr.size_bytes()  # 12 B/elem vs ~12+


def test_csb_invalid_beta(sym_coo_small):
    with pytest.raises(ValueError):
        CSBMatrix(sym_coo_small, beta=0)
    with pytest.raises(ValueError):
        CSBMatrix(sym_coo_small, beta=1 << 17)


def test_csb_sym_spmv_matches_dense(sym_dense_medium, rng):
    coo = COOMatrix.from_dense(sym_dense_medium)
    csbs = CSBSymMatrix(coo, beta=32)
    x = rng.standard_normal(coo.n_cols)
    assert np.allclose(csbs.spmv(x), sym_dense_medium @ x)


def test_csb_sym_rejects_unsymmetric():
    coo = COOMatrix((2, 2), [0], [1], [1.0])
    with pytest.raises(ValueError):
        CSBSymMatrix(coo)


def test_csb_sym_roundtrip(sym_coo_medium):
    csbs = CSBSymMatrix(sym_coo_medium, beta=64)
    assert np.allclose(
        csbs.to_coo().to_dense(), sym_coo_medium.to_dense()
    )


def test_csb_sym_stores_about_half(sym_coo_medium):
    csb = CSBMatrix(sym_coo_medium, beta=64)
    csbs = CSBSymMatrix(sym_coo_medium, beta=64)
    assert csbs.size_bytes() < 0.65 * csb.size_bytes()


def test_csb_sym_generic_partition_interface(sym_dense_medium, rng):
    coo = COOMatrix.from_dense(sym_dense_medium)
    csbs = CSBSymMatrix(coo, beta=64)
    parts = csbs.block_row_partitions(4)
    x = rng.standard_normal(coo.n_cols)
    y = np.zeros(coo.n_rows)
    for s, e in parts:
        local = np.zeros(coo.n_rows)
        csbs.spmv_partition(x, y, local, s, e)
        y += local
    assert np.allclose(y, sym_dense_medium @ x)


def test_csb_sym_partition_alignment_enforced(sym_coo_medium, rng):
    csbs = CSBSymMatrix(sym_coo_medium, beta=64)
    with pytest.raises(ValueError):
        csbs.spmv_partition(
            np.zeros(csbs.n_cols), np.zeros(csbs.n_rows),
            np.zeros(csbs.n_rows), 10, csbs.n_rows,
        )


def test_parallel_csb_sym_correct(sym_dense_medium, rng):
    coo = COOMatrix.from_dense(sym_dense_medium)
    csbs = CSBSymMatrix(coo, beta=32)
    kernel = ParallelCSBSymSpMV(csbs, n_threads=4)
    x = rng.standard_normal(coo.n_cols)
    assert np.allclose(kernel(x), sym_dense_medium @ x)
    assert kernel.last_stats is not None
    assert kernel.last_stats.n_threads == 4


def test_atomics_appear_on_wide_matrices(rng):
    """Blocks beyond the three innermost diagonals trigger atomics —
    the bandwidth sensitivity the paper points out for [27]."""
    narrow = banded_random(2000, 8.0, 30, np.random.default_rng(0))
    wide = narrow.permute_symmetric(
        np.random.default_rng(1).permutation(2000)
    )
    csbs_narrow = CSBSymMatrix(narrow, beta=64)
    csbs_wide = CSBSymMatrix(wide, beta=64)
    parts_n = csbs_narrow.block_row_partitions(4)
    parts_w = csbs_wide.block_row_partitions(4)
    a_narrow = csbs_narrow.count_atomic_updates(parts_n)
    a_wide = csbs_wide.count_atomic_updates(parts_w)
    assert a_narrow == 0
    assert a_wide > 0.5 * csbs_wide.stored_entries

    # The kernel's measured atomics match the static count.
    x = np.random.default_rng(2).standard_normal(2000)
    kernel = ParallelCSBSymSpMV(csbs_wide, parts_w)
    y = kernel(x)
    assert np.allclose(y, wide.to_scipy() @ x)
    assert kernel.last_stats.atomic_updates == a_wide


def test_predicted_time_penalizes_atomics(rng):
    narrow = banded_random(2000, 8.0, 30, np.random.default_rng(0))
    wide = narrow.permute_symmetric(
        np.random.default_rng(1).permutation(2000)
    )
    t_narrow = predict_csb_sym_time(
        CSBSymMatrix(narrow, beta=64),
        CSBSymMatrix(narrow, beta=64).block_row_partitions(8),
        DUNNINGTON,
    )
    t_wide = predict_csb_sym_time(
        CSBSymMatrix(wide, beta=64),
        CSBSymMatrix(wide, beta=64).block_row_partitions(8),
        DUNNINGTON,
    )
    assert t_wide > 1.5 * t_narrow


def test_csb_sym_empty_matrix():
    csbs = CSBSymMatrix(COOMatrix.empty((8, 8)))
    assert np.array_equal(csbs.spmv(np.ones(8)), np.zeros(8))
    assert csbs.to_coo().nnz == 0
