"""Unit and property tests of the streaming-metrics subsystem.

The load-bearing guarantees:

* histogram percentiles are exact to within one *bucket* of the true
  nearest-rank order statistic (``np.percentile(..., method="nearest")``)
  for any data — the property hypothesis drives;
* :meth:`LogHistogram.merge` is associative and commutative over the
  discrete state (bucket counts, count, min, max), so per-thread shards
  and per-process deltas aggregate in any order;
* the wire format round-trips exactly;
* NaN/negative rejection everywhere a magnitude is recorded;
* SLO error-budget accounting, including histogram-reset detection;
* the OpenMetrics exposition is well-formed (cumulative buckets,
  ``+Inf`` bound, ``# EOF`` terminator).
"""

import json
import math
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    SLO,
    Counter,
    Gauge,
    LogHistogram,
    MetricsRegistry,
    metrics_report,
    openmetrics_text,
    write_metrics_jsonl,
)

# Strictly positive magnitudes inside the default histogram range.
sample_values = st.floats(
    min_value=1e-3, max_value=1e13, allow_nan=False, allow_infinity=False,
).map(abs)

sample_lists = st.lists(sample_values, min_size=1, max_size=200)


# ----------------------------------------------------------------------
# LogHistogram: recording, percentiles, edges
# ----------------------------------------------------------------------
class TestLogHistogram:
    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError, match="empty"):
            LogHistogram().percentile(50)

    def test_single_sample_every_percentile_is_the_sample(self):
        h = LogHistogram()
        h.record(1234.5)
        for q in (0, 1, 50, 95, 99, 100):
            assert h.percentile(q) == pytest.approx(1234.5, rel=0.16)
        # The clamp to the exact min/max makes a singleton exact.
        assert h.percentile(0) == 1234.5
        assert h.percentile(100) == 1234.5

    def test_nan_rejected(self):
        h = LogHistogram()
        with pytest.raises(ValueError, match="NaN"):
            h.record(float("nan"))
        assert h.count == 0

    def test_negative_rejected(self):
        h = LogHistogram()
        with pytest.raises(ValueError, match=">= 0"):
            h.record(-1.0)

    def test_percentile_out_of_range_rejected(self):
        h = LogHistogram()
        h.record(1.0)
        with pytest.raises(ValueError, match="0, 100"):
            h.percentile(101)

    def test_zero_and_subrange_values_land_in_bucket_zero(self):
        h = LogHistogram(min_value=10.0)
        h.record(0.0)
        h.record(3.0)
        assert h.counts[0] == 2
        assert h.percentile(50) == pytest.approx(3.0, abs=10.0)

    def test_overflow_clamps_into_last_bucket(self):
        h = LogHistogram(min_value=1.0, max_value=100.0,
                         buckets_per_decade=2)
        h.record(1e9)
        assert h.counts[-1] == 1
        assert h.max_seen == 1e9
        assert h.percentile(100) == 1e9  # clamped to exact max

    def test_mean_exact(self):
        h = LogHistogram()
        values = [3.0, 7.5, 1000.0, 2.25]
        h.record_many(values)
        assert h.mean == pytest.approx(np.mean(values))
        assert h.sum == pytest.approx(np.sum(values))
        assert h.min_seen == min(values)
        assert h.max_seen == max(values)

    def test_bucket_edges_cover_contiguously(self):
        h = LogHistogram()
        prev_hi = None
        for i in range(h.n_buckets):
            lo, hi = h.bucket_edges(i)
            assert lo < hi
            if prev_hi is not None:
                assert lo == pytest.approx(prev_hi)
            prev_hi = hi
        with pytest.raises(IndexError):
            h.bucket_edges(h.n_buckets)

    def test_count_above_never_overcounts(self):
        h = LogHistogram()
        values = [10.0, 20.0, 30.0, 1000.0, 5000.0]
        h.record_many(values)
        for thr in (5.0, 10.0, 25.0, 999.0, 5000.0, 1e6):
            exact = sum(1 for v in values if v > thr)
            assert h.count_above(thr) <= exact
        # Exact min/max sharpen the edges to exactness.
        assert h.count_above(5.0) == len(values)
        assert h.count_above(5000.0) == 0
        assert h.fraction_above(5.0) == 1.0

    def test_incompatible_merge_rejected(self):
        with pytest.raises(ValueError, match="bucket layouts"):
            LogHistogram().merge(LogHistogram(buckets_per_decade=8))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LogHistogram(min_value=0.0)
        with pytest.raises(ValueError):
            LogHistogram(min_value=10.0, max_value=1.0)
        with pytest.raises(ValueError):
            LogHistogram(buckets_per_decade=0)


# ----------------------------------------------------------------------
# Properties (hypothesis)
# ----------------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(data=sample_lists, q=st.floats(0, 100))
def test_percentile_within_one_bucket_of_numpy(data, q):
    """The histogram's percentile lands in the same or an adjacent
    bucket as ``np.percentile(..., method="nearest")`` — the bucket
    index distance is at most 1 for any data and any q."""
    h = LogHistogram()
    h.record_many(data)
    exact = float(np.percentile(data, q, method="nearest"))
    approx = h.percentile(q)
    assert abs(h.bucket_index(approx) - h.bucket_index(exact)) <= 1


@settings(max_examples=100, deadline=None)
@given(a=sample_lists, b=sample_lists, c=sample_lists)
def test_merge_associative_and_commutative(a, b, c):
    def hist(*datasets):
        h = LogHistogram()
        for d in datasets:
            h.record_many(d)
        return h

    def state(h):
        return (tuple(h.counts), h.count, h.min_seen, h.max_seen)

    ha, hb, hc = hist(a), hist(b), hist(c)
    left = hist(a).merge(hb).merge(hc)          # (a+b)+c
    right = hist(b).merge(hc).merge(ha)         # (b+c)+a
    direct = hist(a, b, c)                      # recorded in one pass
    assert state(left) == state(right) == state(direct)
    assert left.sum == pytest.approx(direct.sum)


@settings(max_examples=100, deadline=None)
@given(data=sample_lists)
def test_dict_round_trip_exact(data):
    h = LogHistogram()
    h.record_many(data)
    wire = json.loads(json.dumps(h.to_dict()))  # through real JSON
    back = LogHistogram.from_dict(wire)
    assert back.counts == h.counts
    assert back.count == h.count
    assert back.min_seen == h.min_seen
    assert back.max_seen == h.max_seen
    assert back.sum == pytest.approx(h.sum)
    assert back.percentile(95) == h.percentile(95)


def test_empty_dict_round_trip():
    back = LogHistogram.from_dict(LogHistogram().to_dict())
    assert back.count == 0
    assert back.min_seen == math.inf


# ----------------------------------------------------------------------
# Counter / Gauge
# ----------------------------------------------------------------------
def test_counter_monotone():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError, match="only go up"):
        c.inc(-1)
    with pytest.raises(ValueError, match="NaN"):
        c.inc(float("nan"))


def test_gauge_keeps_freshest():
    g = Gauge()
    assert g.value != g.value  # NaN until first set
    g.set(4.0)
    assert g.value == 4.0 and g.ts_ns > 0


# ----------------------------------------------------------------------
# MetricsRegistry: sharding, snapshots, cross-process protocol
# ----------------------------------------------------------------------
class TestRegistry:
    def test_same_identity_same_shard(self):
        reg = MetricsRegistry()
        h1 = reg.histogram("lat", backend="serial")
        h2 = reg.histogram("lat", backend="serial")
        assert h1 is h2
        # Different labels (or order-insensitive equality) split/join.
        assert reg.histogram("lat", backend="threads") is not h1
        assert reg.counter("n", a=1, b=2) is reg.counter("n", b=2, a=1)

    def test_cross_thread_shards_merge(self):
        reg = MetricsRegistry()

        def work(offset):
            for i in range(50):
                reg.histogram("lat").record(100.0 + offset + i)
                reg.counter("n").inc()

        threads = [
            threading.Thread(target=work, args=(j * 1000,))
            for j in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        merged = reg.merged_histogram("lat")
        assert merged.count == 200
        assert reg.counter_value("n") == 200

    def test_snapshot_shape_and_merge_snapshot_doubles(self):
        reg = MetricsRegistry()
        reg.counter("ops", kind="x").inc(5)
        reg.gauge("residual").set(1e-9)
        reg.histogram("lat").record_many([10.0, 200.0, 3000.0])
        snap = reg.snapshot()
        assert sorted(snap) == ["counters", "gauges", "histograms"]
        assert snap["counters"][0] == {
            "name": "ops", "labels": {"kind": "x"}, "value": 5.0,
        }
        assert snap["histograms"][0]["summary"]["count"] == 3
        # Parent-side protocol half: folding a snapshot adds deltas.
        reg.merge_snapshot(json.loads(json.dumps(snap)))
        assert reg.counter_value("ops", kind="x") == 10.0
        assert reg.merged_histogram("lat").count == 6
        assert reg.gauge_value("residual") == 1e-9

    def test_unknown_lookups(self):
        reg = MetricsRegistry()
        assert reg.merged_histogram("nope") is None
        assert reg.counter_value("nope") == 0.0
        assert reg.gauge_value("nope") != reg.gauge_value("nope")

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.clear()
        assert reg.metric_names() == []


# ----------------------------------------------------------------------
# SLO
# ----------------------------------------------------------------------
class TestSLO:
    def test_healthy_within_budget(self):
        h = LogHistogram()
        h.record_many([100.0] * 99 + [1e9])
        report = SLO("lat", threshold=1e6, percentile=95).observe(h)
        assert report.met            # p95 is ~100
        assert report.window_count == 100
        assert report.window_violations <= 1
        assert report.healthy        # 1% violations vs 5% budget
        assert "OK" in report.render()

    def test_violated_when_budget_exhausted(self):
        h = LogHistogram()
        h.record_many([100.0] * 80 + [1e9] * 20)  # 20% above
        report = SLO("lat", threshold=1e6, percentile=99).observe(h)
        assert not report.met
        assert not report.healthy
        assert report.budget_consumed > 1.0
        assert "VIOLATED" in report.render()

    def test_streaming_diffs_and_window(self):
        h = LogHistogram()
        slo = SLO("lat", threshold=1e6, percentile=95, window=2)
        h.record_many([100.0] * 10)
        assert slo.observe(h).window_count == 10
        h.record_many([100.0] * 5)
        r = slo.observe(h)
        assert r.window_count == 15  # 10 + 5, both inside window=2
        h.record(100.0)
        r = slo.observe(h)
        assert r.window_count == 6   # the first delta aged out

    def test_reset_detection(self):
        h = LogHistogram()
        h.record_many([100.0] * 10)
        slo = SLO("lat", threshold=1e6, window=5)
        slo.observe(h)
        fresh = LogHistogram()      # cleared/replaced histogram
        fresh.record_many([100.0] * 3)
        r = slo.observe(fresh)
        assert r.window_count == 13  # old 10 + restarted 3, no negatives

    def test_empty_histogram_observation(self):
        r = SLO("lat", threshold=1e6).observe(LogHistogram())
        assert not r.met
        assert r.observed != r.observed
        assert r.healthy  # no data consumes no budget

    def test_validation(self):
        with pytest.raises(ValueError):
            SLO("x", threshold=0.0)
        with pytest.raises(ValueError):
            SLO("x", threshold=1.0, percentile=100.0)
        with pytest.raises(ValueError):
            SLO("x", threshold=1.0, window=0)

    def test_to_dict_is_jsonable(self):
        h = LogHistogram()
        h.record(5.0)
        json.dumps(SLO("lat", threshold=10.0).observe(h).to_dict())


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _sample_snapshot():
    reg = MetricsRegistry()
    reg.counter("traffic.bytes", fmt="sss").inc(1024)
    reg.gauge("solver.residual", solver="cg").set(1e-10)
    reg.histogram("op.apply_ns", backend="serial").record_many(
        [100.0, 2000.0, 2000.0, 5e7]
    )
    return reg.snapshot()


def test_openmetrics_exposition():
    text = openmetrics_text(_sample_snapshot())
    assert text.endswith("# EOF\n")
    assert "# TYPE repro_traffic_bytes counter" in text
    assert 'repro_traffic_bytes_total{fmt="sss"} 1024' in text
    assert 'repro_solver_residual{solver="cg"} 1e-10' in text
    # Histogram: cumulative buckets ending at +Inf, sum and count.
    lines = text.splitlines()
    buckets = [
        ln for ln in lines if ln.startswith("repro_op_apply_ns_bucket")
    ]
    counts = [int(ln.rsplit(" ", 1)[1]) for ln in buckets]
    assert counts == sorted(counts) and counts[-1] == 4
    assert 'le="+Inf"' in buckets[-1]
    assert any(ln.startswith("repro_op_apply_ns_count") for ln in lines)
    # Sanitization: dots became underscores, names stay parseable.
    assert "op.apply" not in text


def test_metrics_report_renders_everything():
    out = metrics_report(_sample_snapshot(), title="t")
    assert "op.apply_ns{backend=serial}" in out
    assert "traffic.bytes{fmt=sss}" in out
    assert "solver.residual{solver=cg}" in out
    assert "(no metrics recorded)" in metrics_report(
        MetricsRegistry().snapshot()
    )


def test_write_metrics_jsonl_appends(tmp_path):
    path = tmp_path / "series" / "metrics.jsonl"
    write_metrics_jsonl(path, _sample_snapshot(), meta={"run": 1})
    write_metrics_jsonl(path, _sample_snapshot(), meta={"run": 2})
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    records = [json.loads(ln) for ln in lines]
    assert [r["meta"]["run"] for r in records] == [1, 2]
    assert records[0]["metrics"]["histograms"][0]["summary"]["count"] == 4
