"""Integration tests for the multithreaded SpM×V orchestration (Alg. 3)."""

import numpy as np
import pytest

from repro.formats import (
    COOMatrix,
    CSRMatrix,
    CSXMatrix,
    CSXSymMatrix,
    SSSMatrix,
)
from repro.parallel import (
    Executor,
    ParallelSpMV,
    ParallelSymmetricSpMV,
    partition_nnz_balanced,
    partition_rows_equal,
)


@pytest.fixture(scope="session")
def medium_setup(sym_dense_medium):
    coo = COOMatrix.from_dense(sym_dense_medium)
    parts = partition_rows_equal(coo.n_rows, 5)
    return sym_dense_medium, coo, parts


@pytest.mark.parametrize("method", ["naive", "effective", "indexed"])
def test_sss_all_methods(medium_setup, method, rng):
    dense, coo, parts = medium_setup
    sss = SSSMatrix.from_coo(coo)
    kernel = ParallelSymmetricSpMV(sss, parts, method)
    x = rng.standard_normal(coo.n_cols)
    assert np.allclose(kernel(x), dense @ x)


@pytest.mark.parametrize("method", ["naive", "effective", "indexed"])
def test_csx_sym_all_methods(medium_setup, method, rng):
    dense, coo, parts = medium_setup
    csxs = CSXSymMatrix(coo, partitions=parts)
    kernel = ParallelSymmetricSpMV(csxs, parts, method)
    x = rng.standard_normal(coo.n_cols)
    assert np.allclose(kernel(x), dense @ x)


def test_csr_parallel(medium_setup, rng):
    dense, coo, parts = medium_setup
    csr = CSRMatrix.from_coo(coo)
    kernel = ParallelSpMV(csr, parts)
    x = rng.standard_normal(coo.n_cols)
    assert np.allclose(kernel(x), dense @ x)


def test_csx_parallel(medium_setup, rng):
    dense, coo, parts = medium_setup
    csx = CSXMatrix(coo, partitions=parts)
    kernel = ParallelSpMV(csx, parts)
    x = rng.standard_normal(coo.n_cols)
    assert np.allclose(kernel(x), dense @ x)


def test_csx_partition_mismatch_rejected(medium_setup):
    _, coo, parts = medium_setup
    csx = CSXMatrix(coo, partitions=parts)
    other = partition_rows_equal(coo.n_rows, 3)
    with pytest.raises(ValueError):
        ParallelSpMV(csx, other)


def test_output_vector_reuse(medium_setup, rng):
    dense, coo, parts = medium_setup
    sss = SSSMatrix.from_coo(coo)
    kernel = ParallelSymmetricSpMV(sss, parts, "indexed")
    x = rng.standard_normal(coo.n_cols)
    y = np.full(coo.n_rows, 1234.5)  # stale contents must be cleared
    out = kernel(x, y)
    assert out is y
    assert np.allclose(y, dense @ x)


def test_repeated_calls_are_consistent(medium_setup, rng):
    dense, coo, parts = medium_setup
    sss = SSSMatrix.from_coo(coo)
    kernel = ParallelSymmetricSpMV(sss, parts, "indexed")
    x1 = rng.standard_normal(coo.n_cols)
    x2 = rng.standard_normal(coo.n_cols)
    assert np.allclose(kernel(x1), dense @ x1)
    assert np.allclose(kernel(x2), dense @ x2)
    assert np.allclose(kernel(x1), dense @ x1)


def test_swapped_vectors_iteration(medium_setup, rng):
    """The paper's framework swaps input/output every iteration."""
    dense, coo, parts = medium_setup
    sss = SSSMatrix.from_coo(coo)
    kernel = ParallelSymmetricSpMV(sss, parts, "indexed")
    x = rng.standard_normal(coo.n_cols)
    expected = x.copy()
    for _ in range(3):
        expected = dense @ expected
        # normalize to keep values bounded
        expected /= np.linalg.norm(expected)
        x = kernel(x)
        x /= np.linalg.norm(x)
    assert np.allclose(x, expected)


def test_threads_executor_matches_serial(medium_setup, rng):
    dense, coo, parts = medium_setup
    sss = SSSMatrix.from_coo(coo)
    x = rng.standard_normal(coo.n_cols)
    with Executor("threads", max_workers=4) as ex:
        kernel = ParallelSymmetricSpMV(sss, parts, "indexed", executor=ex)
        assert np.allclose(kernel(x), dense @ x)


def test_nnz_balanced_partitions(medium_setup, rng):
    dense, coo, _ = medium_setup
    sss = SSSMatrix.from_coo(coo)
    parts = partition_nnz_balanced(sss.expanded_row_nnz(), 7)
    kernel = ParallelSymmetricSpMV(sss, parts, "indexed")
    x = rng.standard_normal(coo.n_cols)
    assert np.allclose(kernel(x), dense @ x)


def test_single_thread_degenerate(medium_setup, rng):
    dense, coo, _ = medium_setup
    sss = SSSMatrix.from_coo(coo)
    kernel = ParallelSymmetricSpMV(sss, [(0, coo.n_rows)], "indexed")
    x = rng.standard_normal(coo.n_cols)
    assert np.allclose(kernel(x), dense @ x)


def test_many_threads_small_matrix(rng):
    dense = np.diag(np.arange(1.0, 7.0))
    dense[3, 1] = dense[1, 3] = 0.5
    coo = COOMatrix.from_dense(dense)
    sss = SSSMatrix.from_coo(coo)
    parts = partition_rows_equal(6, 6)
    kernel = ParallelSymmetricSpMV(sss, parts, "indexed")
    x = rng.standard_normal(6)
    assert np.allclose(kernel(x), dense @ x)


def test_bad_x_shape_rejected(medium_setup):
    _, coo, parts = medium_setup
    sss = SSSMatrix.from_coo(coo)
    kernel = ParallelSymmetricSpMV(sss, parts)
    with pytest.raises(ValueError):
        kernel(np.zeros(coo.n_cols + 1))


def test_unsymmetric_bad_x_shape_rejected(medium_setup):
    """Regression: ParallelSpMV must validate x against n_cols instead
    of silently producing garbage for a mis-sized vector."""
    _, coo, parts = medium_setup
    csr = CSRMatrix.from_coo(coo)
    kernel = ParallelSpMV(csr, parts)
    with pytest.raises(ValueError):
        kernel(np.zeros(coo.n_cols + 1))
    with pytest.raises(ValueError):
        kernel(np.zeros(coo.n_cols - 1))
    with pytest.raises(ValueError):
        kernel(np.zeros((coo.n_cols + 2, 3)))
    with pytest.raises(ValueError):
        kernel(np.zeros((coo.n_cols, 0)))


def test_bad_y_shape_rejected(medium_setup, rng):
    _, coo, parts = medium_setup
    csr = CSRMatrix.from_coo(coo)
    kernel = ParallelSpMV(csr, parts)
    x = rng.standard_normal(coo.n_cols)
    with pytest.raises(ValueError):
        kernel(x, np.zeros(coo.n_rows + 1))
    X = rng.standard_normal((coo.n_cols, 4))
    with pytest.raises(ValueError):
        kernel(X, np.zeros((coo.n_rows, 5)))


@pytest.mark.parametrize("method", ["naive", "effective", "indexed"])
def test_symmetric_driver_multi_rhs(medium_setup, method, rng):
    """2-D input transparently runs the spmm partition kernels with
    (N, k) local buffers; result matches the dense block product."""
    dense, coo, parts = medium_setup
    sss = SSSMatrix.from_coo(coo)
    kernel = ParallelSymmetricSpMV(sss, parts, method)
    X = rng.standard_normal((coo.n_cols, 6))
    assert np.allclose(kernel(X), dense @ X)
    # 1-D calls still work on the same kernel object afterwards.
    x = rng.standard_normal(coo.n_cols)
    assert np.allclose(kernel(x), dense @ x)


def test_unsymmetric_driver_multi_rhs(medium_setup, rng):
    dense, coo, parts = medium_setup
    for matrix in (
        CSRMatrix.from_coo(coo),
        CSXMatrix(coo, partitions=parts),
    ):
        kernel = ParallelSpMV(matrix, parts)
        X = rng.standard_normal((coo.n_cols, 6))
        assert np.allclose(kernel(X), dense @ X)
        assert np.allclose(kernel(X[:, 0]), dense @ X[:, 0])


def test_multi_rhs_column_views_accepted(medium_setup, rng):
    """Non-contiguous 2-D inputs (transposes, column slices) work."""
    dense, coo, parts = medium_setup
    sss = SSSMatrix.from_coo(coo)
    kernel = ParallelSymmetricSpMV(sss, parts, "indexed")
    XT = rng.standard_normal((4, coo.n_cols))
    assert np.allclose(kernel(XT.T), dense @ XT.T)


def test_footprint_passthrough(medium_setup):
    _, coo, parts = medium_setup
    sss = SSSMatrix.from_coo(coo)
    kernel = ParallelSymmetricSpMV(sss, parts, "indexed")
    fp = kernel.footprint()
    assert fp.method == "indexed"
    assert fp.n_threads == len(parts)
