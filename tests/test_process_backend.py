"""Segment lifecycle of the shared-memory process backend.

The ``processes`` executor maps every workspace of a bound operator
into ``multiprocessing.shared_memory`` segments — leaking one is a
machine-wide leak (/dev/shm survives the process), so the lifecycle
invariants get their own regression suite:

* ``close()`` ends with **zero** registered segments and no
  ``ResourceWarning``;
* a chaos poison → ``recover()`` cycle neither leaks nor corrupts;
* an operator garbage-collected *without* ``close()`` still releases
  its segments through the arena/pool finalizers (while the existing
  ``bound_operator.unclosed_gc`` accounting fires);
* worker-executed task spans are attributed with the worker ``pid``.
"""

import gc
import os
import warnings

import numpy as np
import pytest

from repro.obs import Tracer, reset_warning_counts, tracing, warning_counts
from repro.parallel import (
    Executor,
    ParallelSymmetricSpMV,
    live_segments,
    shared_memory_available,
)
from repro.resilience import BatchExecutionError, ChaosPlan, FaultSpec

from tests.conformance import build_symmetric, reference_product, rhs_block

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)


def _bound(executor, fmt="sss", method="indexed", k=None):
    matrix, parts = build_symmetric("random", fmt, "thirds")
    driver = ParallelSymmetricSpMV(matrix, parts, method, executor=executor)
    return driver.bind(k)


def _poison_plan(n_tasks: int) -> ChaosPlan:
    """Batch 0 raises in every worker; later batches are clean."""
    return ChaosPlan(
        0, p_raise=0.0, p_delay=0.0, reorder=False,
        faults={(0, t): FaultSpec("raise") for t in range(n_tasks)},
    )


def test_close_releases_all_segments():
    ex = Executor("processes", max_workers=2)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        op = _bound(ex)
        x = rhs_block(op.matrix.n_cols, None)
        y = np.array(op(x))
        assert op._remote is not None  # the backend actually engaged
        op.close()
        ex.close()
        gc.collect()
    assert np.allclose(y, reference_product("random", x))
    assert live_segments() == []
    assert not [w for w in caught if issubclass(w.category, ResourceWarning)]


def test_close_is_idempotent_with_pool():
    ex = Executor("processes", max_workers=2)
    op = _bound(ex)
    op.close()
    op.close()
    ex.close()
    assert live_segments() == []


def test_chaos_poison_recover_cycle_is_leak_free():
    matrix, parts = build_symmetric("random", "sss", "thirds")
    plan = _poison_plan(len(parts))
    ex = Executor("processes", max_workers=2, plan=plan)
    op = ParallelSymmetricSpMV(
        matrix, parts, "indexed", executor=ex
    ).bind(on_poison="raise")
    x = rhs_block(matrix.n_cols, None)
    try:
        with pytest.raises(BatchExecutionError):
            op(x)  # batch 0: every worker raises the injected fault
        assert op.poisoned
        op.recover()
        assert not op.poisoned
        y = np.array(op(x))  # batch 1 draws no fault
        assert np.allclose(y, reference_product("random", x))
    finally:
        op.close()
        ex.close()
    assert live_segments() == []


def test_gc_unclosed_operator_releases_segments():
    reset_warning_counts()
    ex = Executor("processes", max_workers=2)
    op = _bound(ex)
    x = rhs_block(op.matrix.n_cols, None)
    op(x)
    assert live_segments()  # segments exist while the operator lives
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        del op
        gc.collect()
    # The leak is *accounted* (warning + counter) and then *contained*
    # (arena and pool finalizers release every segment regardless).
    assert any(issubclass(w.category, ResourceWarning) for w in caught)
    assert warning_counts().get("bound_operator.unclosed_gc") == 1
    assert live_segments() == []
    ex.close()


def test_worker_spans_carry_worker_pid():
    ex = Executor("processes", max_workers=2)
    tracer = Tracer()
    with tracing(tracer):
        op = _bound(ex)
        op(rhs_block(op.matrix.n_cols, None))
        op.close()
    ex.close()
    spans = [
        ev for _, ev in tracer.events() if ev.name == "spmv.mult.task"
    ]
    assert spans
    pids = {ev.attrs["pid"] for ev in spans}
    assert pids and os.getpid() not in pids


def test_unbound_driver_degrades_inline_with_warning():
    reset_warning_counts()
    matrix, parts = build_symmetric("random", "sss", "thirds")
    ex = Executor("processes", max_workers=2)
    try:
        kernel = ParallelSymmetricSpMV(matrix, parts, "indexed", executor=ex)
        x = rhs_block(matrix.n_cols, None)
        # No bound operator → no shared segments → thread-pool degrade,
        # counted exactly once across repeated applications.
        for _ in range(2):
            assert np.allclose(kernel(x), reference_product("random", x))
    finally:
        ex.close()
    assert warning_counts().get("executor.processes_inline") == 1
    assert live_segments() == []


@pytest.mark.skipif(
    "spawn" not in __import__("multiprocessing").get_all_start_methods(),
    reason="spawn start method unavailable",
)
def test_spawn_start_method_bit_identical(monkeypatch):
    monkeypatch.setenv("REPRO_PROCESS_START", "spawn")
    matrix, parts = build_symmetric("random", "sss", "thirds")
    x = rhs_block(matrix.n_cols, None)
    serial = np.array(ParallelSymmetricSpMV(matrix, parts, "indexed")(x))
    ex = Executor("processes", max_workers=2)
    op = ParallelSymmetricSpMV(
        matrix, parts, "indexed", executor=ex
    ).bind()
    try:
        assert op._remote.start_method == "spawn"
        assert np.array_equal(np.array(op(x)), serial)
    finally:
        op.close()
        ex.close()
    assert live_segments() == []
