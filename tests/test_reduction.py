"""Unit tests for the three local-vector reduction methods (Section III)."""

import numpy as np
import pytest

from repro.formats import SSSMatrix
from repro.parallel import (
    EffectiveRangesReduction,
    IndexedReduction,
    NaiveReduction,
    ParallelSymmetricSpMV,
    make_reduction,
    partition_nnz_balanced,
)


@pytest.fixture(scope="session")
def sss_and_parts(sym_dense_medium):
    sss = SSSMatrix.from_dense(sym_dense_medium)
    parts = partition_nnz_balanced(sss.expanded_row_nnz(), 6)
    return sss, parts


def test_factory_names(sss_and_parts):
    sss, parts = sss_and_parts
    assert isinstance(make_reduction("naive", sss, parts), NaiveReduction)
    assert isinstance(
        make_reduction("effective", sss, parts), EffectiveRangesReduction
    )
    assert isinstance(make_reduction("indexed", sss, parts), IndexedReduction)
    with pytest.raises(ValueError):
        make_reduction("bogus", sss, parts)


def test_all_methods_equal_serial(sss_and_parts, rng):
    sss, parts = sss_and_parts
    x = rng.standard_normal(sss.n_cols)
    ref = sss.spmv(x)
    for method in ("naive", "effective", "indexed"):
        y = ParallelSymmetricSpMV(sss, parts, method)(x)
        assert np.allclose(y, ref), method


def test_naive_allocates_full_vectors(sss_and_parts):
    sss, parts = sss_and_parts
    red = NaiveReduction(sss, parts)
    locals_ = red.allocate_locals()
    assert len(locals_) == len(parts)
    assert all(buf.shape == (sss.n_rows,) for buf in locals_)


def test_effective_thread0_has_no_local(sss_and_parts):
    sss, parts = sss_and_parts
    red = EffectiveRangesReduction(sss, parts)
    locals_ = red.allocate_locals()
    assert locals_[0] is None
    assert all(buf is not None for buf in locals_[1:])


def test_footprint_equations(sss_and_parts):
    """Measured footprints match eqs. (3) and (4) for the closed forms."""
    sss, parts = sss_and_parts
    p, n = len(parts), sss.n_rows
    naive = NaiveReduction(sss, parts).footprint()
    assert naive.ws_model_bytes == 8 * p * n
    assert naive.ws_measured_bytes == naive.ws_model_bytes

    eff = EffectiveRangesReduction(sss, parts).footprint()
    assert eff.ws_model_bytes == 4 * (p - 1) * n
    sum_starts = sum(s for s, _ in parts)
    assert eff.ws_measured_bytes == 8 * sum_starts


def test_indexed_footprint_scales_with_pairs(sss_and_parts):
    sss, parts = sss_and_parts
    red = IndexedReduction(sss, parts)
    fp = red.footprint()
    assert fp.index_pairs == red.n_pairs
    assert fp.ws_measured_bytes == 16 * red.n_pairs
    assert 0.0 < fp.effective_density <= 1.0


def test_indexed_pairs_equal_union_of_conflicts(sss_and_parts):
    sss, parts = sss_and_parts
    red = IndexedReduction(sss, parts)
    total = sum(
        sss.partition_conflict_rows(s, e).size for s, e in parts
    )
    assert red.n_pairs == total


def test_indexed_index_sorted_by_idx(sss_and_parts):
    sss, parts = sss_and_parts
    red = IndexedReduction(sss, parts)
    assert np.all(np.diff(red.index_idx) >= 0)


def test_indexed_reduction_splits_never_share_idx(sss_and_parts):
    sss, parts = sss_and_parts
    red = IndexedReduction(sss, parts)
    for n_chunks in (2, 3, 5, 8):
        splits = red.reduction_splits(n_chunks)
        assert splits[0][0] == 0 and splits[-1][1] == red.n_pairs
        for (s0, e0), (s1, e1) in zip(splits, splits[1:]):
            assert e0 == s1
            if 0 < e0 < red.n_pairs:
                assert red.index_idx[e0 - 1] != red.index_idx[e0]


def test_indexed_splits_empty_index():
    dense = np.diag(np.arange(1.0, 9.0))  # diagonal: no conflicts
    sss = SSSMatrix.from_dense(dense)
    parts = [(0, 4), (4, 8)]
    red = IndexedReduction(sss, parts)
    assert red.n_pairs == 0
    assert red.reduction_splits(3) == [(0, 0)] * 3
    assert red.effective_density() == 0.0


def test_default_reduction_splits_cover_rows(sss_and_parts):
    sss, parts = sss_and_parts
    red = NaiveReduction(sss, parts)
    splits = red.reduction_splits(4)
    assert splits[0][0] == 0 and splits[-1][1] == sss.n_rows


def test_overhead_ordering():
    """indexed < effective < naive measured working set (Fig. 5 order).

    Needs a matrix with sparse effective regions (the paper's d ≈ 0.1
    regime): indexing pays 16 bytes per conflicting element vs. 8 bytes
    per effective-region slot, so it wins exactly when d < 0.5 — true
    for realistic sizes, not for tiny dense fixtures.
    """
    from repro.matrices import banded_random

    rng = np.random.default_rng(11)
    coo = banded_random(5000, nnz_per_row=9.0, band=200, rng=rng)
    sss = SSSMatrix.from_coo(coo)
    parts = partition_nnz_balanced(sss.expanded_row_nnz(), 8)
    ws = {
        m: make_reduction(m, sss, parts).footprint().ws_measured_bytes
        for m in ("naive", "effective", "indexed")
    }
    assert ws["indexed"] < ws["effective"] < ws["naive"]


def test_single_thread_no_overhead():
    dense = np.eye(10) * 3.0
    dense[5, 2] = dense[2, 5] = 1.0
    sss = SSSMatrix.from_dense(dense)
    red = IndexedReduction(sss, [(0, 10)])
    fp = red.footprint()
    assert fp.index_pairs == 0
    assert fp.ws_measured_bytes == 0.0
