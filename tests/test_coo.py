"""Unit tests for the COO interchange format."""

import numpy as np
import pytest

from repro.formats import COOMatrix


def test_from_dense_roundtrip(sym_dense_small):
    coo = COOMatrix.from_dense(sym_dense_small)
    assert np.array_equal(coo.to_dense(), sym_dense_small)


def test_entries_are_canonically_sorted():
    coo = COOMatrix((3, 3), [2, 0, 1], [0, 1, 2], [1.0, 2.0, 3.0])
    assert np.array_equal(coo.rows, [0, 1, 2])
    assert np.array_equal(coo.cols, [1, 2, 0])
    assert np.array_equal(coo.vals, [2.0, 3.0, 1.0])


def test_duplicates_are_summed():
    coo = COOMatrix((2, 2), [0, 0, 1], [1, 1, 0], [1.0, 2.0, 5.0])
    assert coo.nnz == 2
    assert coo.to_dense()[0, 1] == 3.0


def test_duplicates_kept_when_disabled():
    coo = COOMatrix(
        (2, 2), [0, 0], [1, 1], [1.0, 2.0], sum_duplicates=False
    )
    assert coo.nnz == 2
    # SpM×V still accumulates both entries.
    y = coo.spmv(np.array([0.0, 1.0]))
    assert y[0] == 3.0


def test_drop_zeros():
    coo = COOMatrix(
        (2, 2), [0, 1], [0, 1], [0.0, 1.0], drop_zeros=True
    )
    assert coo.nnz == 1


def test_out_of_bounds_rejected():
    with pytest.raises(ValueError):
        COOMatrix((2, 2), [0, 2], [0, 0], [1.0, 1.0])
    with pytest.raises(ValueError):
        COOMatrix((2, 2), [0, -1], [0, 0], [1.0, 1.0])


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        COOMatrix((2, 2), [0, 1], [0], [1.0, 1.0])


def test_spmv_matches_dense(sym_dense_small, rng):
    coo = COOMatrix.from_dense(sym_dense_small)
    x = rng.standard_normal(coo.n_cols)
    assert np.allclose(coo.spmv(x), sym_dense_small @ x)


def test_spmv_rectangular(rng):
    dense = rng.random((4, 7))
    dense[dense < 0.5] = 0.0
    coo = COOMatrix.from_dense(dense)
    x = rng.standard_normal(7)
    assert np.allclose(coo.spmv(x), dense @ x)


def test_spmv_wrong_x_shape(sym_coo_small):
    with pytest.raises(ValueError):
        sym_coo_small.spmv(np.zeros(sym_coo_small.n_cols + 1))


def test_transpose(rng):
    dense = rng.random((5, 3))
    coo = COOMatrix.from_dense(dense)
    assert np.array_equal(coo.transpose().to_dense(), dense.T)


def test_is_symmetric(sym_coo_small):
    assert sym_coo_small.is_symmetric()
    assert sym_coo_small.is_structurally_symmetric()


def test_is_not_symmetric():
    coo = COOMatrix((2, 2), [0], [1], [1.0])
    assert not coo.is_symmetric()
    rect = COOMatrix((2, 3), [0], [1], [1.0])
    assert not rect.is_symmetric()


def test_structural_but_not_value_symmetric():
    coo = COOMatrix((2, 2), [0, 1], [1, 0], [1.0, 2.0])
    assert coo.is_structurally_symmetric()
    assert not coo.is_symmetric()


def test_lower_triangle(sym_coo_small):
    strict = sym_coo_small.lower_triangle(strict=True)
    assert np.all(strict.cols < strict.rows)
    loose = sym_coo_small.lower_triangle(strict=False)
    assert np.all(loose.cols <= loose.rows)
    assert loose.nnz == strict.nnz + np.count_nonzero(
        sym_coo_small.diagonal()
    )


def test_diagonal(sym_dense_small):
    coo = COOMatrix.from_dense(sym_dense_small)
    assert np.array_equal(coo.diagonal(), np.diag(sym_dense_small))


def test_permute_symmetric(sym_dense_small, rng):
    coo = COOMatrix.from_dense(sym_dense_small)
    perm = rng.permutation(coo.n_rows)
    permuted = coo.permute_symmetric(perm)
    expected = sym_dense_small[np.ix_(perm, perm)]
    assert np.array_equal(permuted.to_dense(), expected)


def test_permute_rejects_bad_perm(sym_coo_small):
    with pytest.raises(ValueError):
        sym_coo_small.permute_symmetric(np.arange(3))


def test_row_counts(sym_coo_small, sym_dense_small):
    expected = (sym_dense_small != 0).sum(axis=1)
    assert np.array_equal(sym_coo_small.row_counts(), expected)


def test_bandwidth():
    coo = COOMatrix((5, 5), [0, 4], [0, 0], [1.0, 1.0])
    assert coo.bandwidth() == 4
    assert COOMatrix.empty((3, 3)).bandwidth() == 0


def test_size_bytes(sym_coo_small):
    assert sym_coo_small.size_bytes() == sym_coo_small.nnz * 16


def test_to_scipy_roundtrip(sym_coo_small):
    sp = sym_coo_small.to_scipy()
    back = COOMatrix.from_scipy(sp)
    assert np.array_equal(back.to_dense(), sym_coo_small.to_dense())


def test_empty_matrix():
    coo = COOMatrix.empty((4, 4))
    assert coo.nnz == 0
    y = coo.spmv(np.ones(4))
    assert np.array_equal(y, np.zeros(4))


# ----------------------------------------------------------------------
# Canonicality-aware symmetry checks (fuzz-hardening regressions)
# ----------------------------------------------------------------------
def test_is_symmetric_on_noncanonical_instance():
    # Surviving duplicates used to make is_symmetric compare the raw
    # entry arrays against the (canonicalized, shorter) transpose and
    # report False for a perfectly symmetric matrix.
    coo = COOMatrix(
        (3, 3), [2, 0, 2, 1, 0], [0, 2, 0, 1, 0],
        [3.0, 4.0, 1.0, 1.0, 2.0],
        sum_duplicates=False,
    )
    assert not coo.is_canonical
    assert coo.is_symmetric()
    assert coo.is_structurally_symmetric()


def test_is_symmetric_with_duplicates():
    # Duplicates whose *sums* are symmetric: the dirty instance must
    # agree with the canonical verdict.
    coo = COOMatrix(
        (2, 2), [1, 0, 1], [0, 1, 0], [1.0, 3.0, 2.0],
        sum_duplicates=False,
    )
    assert coo.is_symmetric()


def test_is_symmetric_asymmetric_noncanonical():
    coo = COOMatrix(
        (2, 2), [1, 0], [0, 1], [1.0, 5.0], sum_duplicates=False
    )
    assert not coo.is_symmetric()
    assert coo.is_structurally_symmetric()


def test_canonicalize():
    dirty = COOMatrix(
        (2, 2), [1, 0, 1], [0, 1, 0], [1.0, 3.0, 2.0],
        sum_duplicates=False,
    )
    canon = dirty.canonicalize()
    assert canon.is_canonical
    assert np.array_equal(canon.to_dense(), dirty.to_dense())
    # Already-canonical instances return themselves.
    assert canon.canonicalize() is canon
