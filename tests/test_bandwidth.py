"""Unit tests for bandwidth statistics."""

import numpy as np
import pytest

from repro.formats import COOMatrix
from repro.reorder import bandwidth_stats


def test_diagonal_matrix():
    coo = COOMatrix.from_dense(np.diag([1.0, 2.0, 3.0]))
    s = bandwidth_stats(coo)
    assert s.bandwidth == 0
    assert s.avg_distance == 0.0
    assert s.profile == 0


def test_tridiagonal():
    n = 5
    dense = np.eye(n) * 2
    for i in range(n - 1):
        dense[i, i + 1] = dense[i + 1, i] = -1
    s = bandwidth_stats(COOMatrix.from_dense(dense))
    assert s.bandwidth == 1
    assert s.profile == n - 1


def test_single_far_entry():
    dense = np.eye(6)
    dense[5, 0] = dense[0, 5] = 1.0
    s = bandwidth_stats(COOMatrix.from_dense(dense))
    assert s.bandwidth == 5
    assert s.normalized_bandwidth == pytest.approx(5 / 6)
    assert s.profile == 5  # only row 5 has an envelope


def test_empty_matrix():
    s = bandwidth_stats(COOMatrix.empty((4, 4)))
    assert s.bandwidth == 0 and s.profile == 0


def test_rejects_rectangular():
    with pytest.raises(ValueError):
        bandwidth_stats(COOMatrix((2, 3), [0], [1], [1.0]))


def test_avg_distance(sym_coo_small):
    s = bandwidth_stats(sym_coo_small)
    dist = np.abs(
        sym_coo_small.rows.astype(int) - sym_coo_small.cols.astype(int)
    )
    assert s.avg_distance == pytest.approx(dist.mean())
