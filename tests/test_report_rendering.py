"""Unit tests for the text renderers (tables, series, stacked bars)."""

import pytest

from repro.analysis import render_series, render_stacked_bars, render_table


def test_table_empty_rows():
    out = render_table(["a", "b"], [])
    assert "a" in out and "b" in out


def test_table_column_alignment():
    out = render_table(["col"], [["x"], ["longer"]])
    lines = out.splitlines()
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all lines padded equally


def test_table_custom_float_format():
    out = render_table(["v"], [[3.14159]], floatfmt="{:.1f}")
    assert "3.1" in out and "3.142" not in out


def test_series_sorted_x():
    out = render_series("p", {"s": {4: 2.0, 1: 1.0, 2: 1.5}})
    lines = out.splitlines()
    xs = [line.split()[0] for line in lines[2:]]
    assert xs == ["1", "2", "4"]


def test_stacked_bars_basic():
    out = render_stacked_bars(
        [
            ("a", {"mult": 3.0, "reduce": 1.0}),
            ("b", {"mult": 1.0, "reduce": 1.0}),
        ],
        title="T",
        width=40,
    )
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "# mult" in lines[1] and "= reduce" in lines[1]
    # Bar "a" (total 4) spans the full width; "b" (total 2) half.
    bar_a = lines[2].split("|")[1].split(" ")[0]
    bar_b = lines[3].split("|")[1].split(" ")[0]
    assert len(bar_a) == 40
    assert 18 <= len(bar_b) <= 22


def test_stacked_bars_segment_proportions():
    out = render_stacked_bars(
        [("x", {"s1": 1.0, "s2": 3.0})], width=40
    )
    bar = out.splitlines()[1].split("|")[1].split(" ")[0]
    assert bar.count("#") == 10
    assert bar.count("=") == 30


def test_stacked_bars_missing_segments_ok():
    out = render_stacked_bars(
        [
            ("a", {"s1": 1.0}),
            ("b", {"s2": 2.0}),
        ]
    )
    assert "(1)" in out and "(2)" in out


def test_stacked_bars_empty():
    assert render_stacked_bars([], title="t") == "t"


def test_stacked_bars_zero_values():
    out = render_stacked_bars([("a", {"s": 0.0})])
    assert "(0)" in out
