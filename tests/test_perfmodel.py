"""Unit tests for the roofline performance model."""

import numpy as np
import pytest

from repro.analysis import build_format
from repro.formats import COOMatrix, CSRMatrix, SSSMatrix
from repro.machine import (
    DEFAULT_COST_MODEL,
    DUNNINGTON,
    GAINESTOWN,
    PhaseLoad,
    phase_time,
    predict_serial_csr,
    predict_spmv,
)
from repro.parallel import partition_nnz_balanced


@pytest.fixture(scope="session")
def model_coo(sym_dense_medium):
    return COOMatrix.from_dense(sym_dense_medium)


def test_phase_time_memory_bound():
    load = PhaseLoad([1000.0], bytes_total=5.4e9, flops_total=1.0)
    t, t_c, t_m = phase_time(load, DUNNINGTON, 1)
    assert t == t_m  # seconds of memory vs ~0.4 µs of compute
    assert t == pytest.approx(
        5.4e9 / (DUNNINGTON.per_thread_bw_gbps * 1e9)
    )


def test_phase_time_compute_bound():
    load = PhaseLoad([2.66e9], bytes_total=8.0, flops_total=1.0)
    t, t_c, t_m = phase_time(load, DUNNINGTON, 1)
    assert t == t_c == pytest.approx(1.0)


def test_smt_inflates_compute():
    load = PhaseLoad([3.2e9] * 16, bytes_total=8.0, flops_total=1.0)
    t16, t_c16, _ = phase_time(load, GAINESTOWN, 16)
    load8 = PhaseLoad([3.2e9] * 8, bytes_total=8.0, flops_total=1.0)
    t8, t_c8, _ = phase_time(load8, GAINESTOWN, 8)
    assert t_c16 == pytest.approx(2 * t_c8)  # 16 threads on 8 cores


def test_predict_serial_csr_positive(model_coo):
    csr = CSRMatrix.from_coo(model_coo)
    pt = predict_serial_csr(csr, DUNNINGTON)
    assert pt.total > 0
    assert pt.t_reduce == 0.0
    assert pt.reduction is None
    assert pt.gflops > 0


def test_symmetric_prediction_has_reduction(model_coo):
    sss = SSSMatrix.from_coo(model_coo)
    parts = partition_nnz_balanced(sss.expanded_row_nnz(), 8)
    pt = predict_spmv(sss, parts, DUNNINGTON, reduction="naive")
    assert pt.t_reduce > 0
    assert pt.footprint is not None
    assert pt.reduction == "naive"


def test_reduction_method_ordering(model_coo):
    """Predicted reduction time: indexed < effective < naive."""
    sss = SSSMatrix.from_coo(model_coo)
    parts = partition_nnz_balanced(sss.expanded_row_nnz(), 8)
    times = {
        m: predict_spmv(sss, parts, DUNNINGTON, reduction=m).t_reduce
        for m in ("naive", "effective", "indexed")
    }
    assert times["indexed"] < times["effective"] < times["naive"]


def test_partition_count_validated(model_coo):
    csr = CSRMatrix.from_coo(model_coo)
    parts = partition_nnz_balanced(csr.row_nnz(), 25)
    with pytest.raises(ValueError):
        predict_spmv(csr, parts, DUNNINGTON)


def test_partitions_must_tile(model_coo):
    csr = CSRMatrix.from_coo(model_coo)
    with pytest.raises(ValueError):
        predict_spmv(csr, [(0, 10)], DUNNINGTON)


def test_csx_partitions_must_match(model_coo):
    csx, parts = build_format(model_coo, "csx", n_threads=4)
    other = partition_nnz_balanced(np.ones(model_coo.n_rows), 2)
    with pytest.raises(ValueError):
        predict_spmv(csx, other, DUNNINGTON)
    pt = predict_spmv(csx, parts, DUNNINGTON)
    assert pt.total > 0


def test_flops_scale_with_nnz(model_coo):
    csr = CSRMatrix.from_coo(model_coo)
    pt = predict_serial_csr(csr, DUNNINGTON)
    assert pt.flops == pytest.approx(2.0 * csr.nnz)


def test_symmetric_formats_predict_faster_when_bandwidth_bound():
    """At full Dunnington thread count the halved matrix size must show
    — on a matrix large enough to be streamed from memory (the paper's
    regime), not one resident in the aggregate LLC."""
    from repro.matrices import banded_random

    rng = np.random.default_rng(4)
    coo = banded_random(60_000, nnz_per_row=30.0, band=800, rng=rng)
    csr, parts_c = build_format(coo, "csr", n_threads=24)
    sss, parts_s = build_format(coo, "sss", n_threads=24)
    t_csr = predict_spmv(csr, parts_c, DUNNINGTON).total
    t_sss = predict_spmv(sss, parts_s, DUNNINGTON, reduction="indexed").total
    assert t_sss < t_csr


def test_speedup_over(model_coo):
    csr = CSRMatrix.from_coo(model_coo)
    base = predict_serial_csr(csr, DUNNINGTON)
    parts = partition_nnz_balanced(csr.row_nnz(), 8)
    multi = predict_spmv(csr, parts, DUNNINGTON)
    assert multi.speedup_over(base) > 1.0


def test_gainestown_faster_than_dunnington(model_coo):
    csr = CSRMatrix.from_coo(model_coo)
    t_d = predict_serial_csr(csr, DUNNINGTON).total
    t_g = predict_serial_csr(csr, GAINESTOWN).total
    assert t_g < t_d  # higher clock and far more bandwidth


def test_cost_model_overrides(model_coo):
    csr = CSRMatrix.from_coo(model_coo)
    slow = DEFAULT_COST_MODEL.with_overrides(csr_cycles_per_nnz=50.0)
    t_fast = predict_serial_csr(csr, GAINESTOWN).total
    t_slow = predict_serial_csr(csr, GAINESTOWN, cost=slow).total
    assert t_slow > t_fast
