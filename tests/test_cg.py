"""Unit tests for the instrumented Conjugate Gradient solver."""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSRMatrix, CSXSymMatrix, SSSMatrix
from repro.parallel import ParallelSymmetricSpMV, partition_rows_equal
from repro.solvers import OpCounter, conjugate_gradient


@pytest.fixture(scope="session")
def spd_system(sym_dense_medium, ):
    rng = np.random.default_rng(42)
    x_true = rng.standard_normal(sym_dense_medium.shape[0])
    b = sym_dense_medium @ x_true
    return sym_dense_medium, x_true, b


def test_converges_on_spd(spd_system):
    dense, x_true, b = spd_system
    csr = CSRMatrix.from_dense(dense)
    res = conjugate_gradient(csr.spmv, b, tol=1e-12)
    assert res.converged
    assert np.allclose(res.x, x_true, atol=1e-6)
    assert res.residual_norm <= 1e-12 * np.linalg.norm(b)


def test_iteration_count_reasonable(spd_system):
    """Diagonally dominant fixtures are well conditioned: far fewer
    iterations than the dimension."""
    dense, _, b = spd_system
    csr = CSRMatrix.from_dense(dense)
    res = conjugate_gradient(csr.spmv, b, tol=1e-10)
    assert res.iterations < dense.shape[0] / 2


def test_spmv_count_matches_iterations(spd_system):
    dense, _, b = spd_system
    csr = CSRMatrix.from_dense(dense)
    res = conjugate_gradient(csr.spmv, b, tol=1e-10)
    assert res.n_spmv == res.iterations  # zero x0: no initial SpM×V


def test_nonzero_initial_guess(spd_system):
    dense, x_true, b = spd_system
    csr = CSRMatrix.from_dense(dense)
    x0 = x_true + 0.01 * np.ones_like(x_true)
    res = conjugate_gradient(csr.spmv, b, x0=x0, tol=1e-12)
    assert res.converged
    assert res.n_spmv == res.iterations + 1  # one extra for r0
    assert np.allclose(res.x, x_true, atol=1e-6)


def test_exact_initial_guess_returns_immediately(spd_system):
    dense, x_true, b = spd_system
    csr = CSRMatrix.from_dense(dense)
    res = conjugate_gradient(csr.spmv, b, x0=x_true, tol=1e-8)
    assert res.converged and res.iterations == 0


def test_max_iter_cap(spd_system):
    dense, _, b = spd_system
    csr = CSRMatrix.from_dense(dense)
    res = conjugate_gradient(csr.spmv, b, tol=1e-300, max_iter=3)
    assert not res.converged
    assert res.iterations == 3


def test_residual_history_monotone_overall(spd_system):
    dense, _, b = spd_system
    csr = CSRMatrix.from_dense(dense)
    res = conjugate_gradient(csr.spmv, b, tol=1e-10, record_history=True)
    hist = res.residual_history
    assert hist is not None and hist[-1] < hist[0] * 1e-8


def test_counter_accumulates(spd_system):
    dense, _, b = spd_system
    csr = CSRMatrix.from_dense(dense)
    counter = OpCounter()
    res = conjugate_gradient(csr.spmv, b, tol=1e-10, counter=counter)
    assert counter.flops == res.vector_flops > 0
    assert counter.bytes == res.vector_bytes > 0


def test_vector_counts_match_closed_form(spd_system):
    """Per-iteration vector flops must match the Fig. 14 closed form."""
    from repro.analysis import cg_vector_counts_per_iter

    dense, _, b = spd_system
    n = dense.shape[0]
    csr = CSRMatrix.from_dense(dense)
    r5 = conjugate_gradient(csr.spmv, b, tol=1e-300, max_iter=5)
    r10 = conjugate_gradient(csr.spmv, b, tol=1e-300, max_iter=10)
    flops_per_iter = (r10.vector_flops - r5.vector_flops) / 5
    bytes_per_iter = (r10.vector_bytes - r5.vector_bytes) / 5
    cf_flops, cf_bytes = cg_vector_counts_per_iter(n)
    assert flops_per_iter == pytest.approx(cf_flops)
    assert bytes_per_iter == pytest.approx(cf_bytes)


def test_works_with_parallel_symmetric_kernel(spd_system):
    dense, x_true, b = spd_system
    coo = COOMatrix.from_dense(dense)
    sss = SSSMatrix.from_coo(coo)
    parts = partition_rows_equal(coo.n_rows, 4)
    kernel = ParallelSymmetricSpMV(sss, parts, "indexed")
    res = conjugate_gradient(kernel, b, tol=1e-12)
    assert res.converged
    assert np.allclose(res.x, x_true, atol=1e-6)


def test_works_with_csx_sym(spd_system):
    dense, x_true, b = spd_system
    coo = COOMatrix.from_dense(dense)
    parts = partition_rows_equal(coo.n_rows, 3)
    csxs = CSXSymMatrix(coo, partitions=parts)
    kernel = ParallelSymmetricSpMV(csxs, parts, "indexed")
    res = conjugate_gradient(kernel, b, tol=1e-12)
    assert res.converged
    assert np.allclose(res.x, x_true, atol=1e-6)


def test_same_answer_across_formats(spd_system):
    dense, _, b = spd_system
    coo = COOMatrix.from_dense(dense)
    csr = CSRMatrix.from_coo(coo)
    sss = SSSMatrix.from_coo(coo)
    ra = conjugate_gradient(csr.spmv, b, tol=1e-12)
    rb = conjugate_gradient(sss.spmv, b, tol=1e-12)
    assert np.allclose(ra.x, rb.x, atol=1e-8)


def test_indefinite_direction_bails():
    dense = np.array([[1.0, 0.0], [0.0, -1.0]])  # not SPD
    csr = CSRMatrix.from_dense(dense)
    res = conjugate_gradient(csr.spmv, np.array([0.0, 1.0]), tol=1e-12)
    assert not res.converged


# ----------------------------------------------------------------------
# Breakdown guards (repro.solvers.guards): faults stop the iteration
# with a typed diagnosis instead of burning max_iter.
# ----------------------------------------------------------------------
def _faulty_after(spmv, n_clean, fail_times=None):
    """Operator returning NaN on selected applications (all past
    ``n_clean`` by default, or exactly the 1-based calls in
    ``fail_times``)."""
    calls = {"n": 0}

    def apply(x):
        calls["n"] += 1
        y = np.asarray(spmv(x))
        bad = (
            calls["n"] in fail_times
            if fail_times is not None
            else calls["n"] > n_clean
        )
        return np.full_like(y, np.nan) if bad else y

    return apply


def test_nan_operator_breaks_down_within_two_iterations(spd_system):
    dense, _, b = spd_system
    csr = CSRMatrix.from_dense(dense)
    fault_at = 4  # the 4th SpM×V returns NaN
    res = conjugate_gradient(
        _faulty_after(csr.spmv, fault_at - 1), b, tol=1e-12, max_iter=500
    )
    assert not res.converged
    assert res.breakdown is not None
    assert res.breakdown.kind == "nonfinite"
    # Detection within two iterations of the fault, not at max_iter.
    assert res.iterations <= fault_at + 2
    assert res.n_spmv <= fault_at + 2
    assert "iteration" in res.breakdown.describe()


def test_nan_rhs_breaks_down_before_iterating(spd_system):
    dense, _, b = spd_system
    csr = CSRMatrix.from_dense(dense)
    bad_b = b.copy()
    bad_b[0] = np.nan
    res = conjugate_gradient(csr.spmv, bad_b, tol=1e-12)
    assert not res.converged
    assert res.breakdown is not None
    assert res.breakdown.kind == "nonfinite"
    assert res.iterations == 0
    assert res.n_spmv == 0


def test_indefinite_breakdown_is_typed():
    dense = np.array([[1.0, 0.0], [0.0, -1.0]])  # not SPD
    csr = CSRMatrix.from_dense(dense)
    res = conjugate_gradient(
        csr.spmv, np.array([0.0, 1.0]), tol=1e-12, max_iter=200
    )
    assert not res.converged
    assert res.breakdown is not None
    assert res.breakdown.kind == "indefinite"
    assert res.iterations <= 2
    assert res.breakdown.value <= 0


def test_stagnation_detected(spd_system):
    # A non-symmetric perturbation keeps pᵀAp > 0 (SPD symmetric part)
    # while destroying CG's convergence: the residual stops improving
    # and the stagnation window fires instead of burning max_iter.
    dense, _, b = spd_system
    n = dense.shape[0]
    rng = np.random.default_rng(5)
    skew = rng.standard_normal((n, n))
    skew = (skew - skew.T) * np.abs(dense).max()
    A = dense + skew

    res = conjugate_gradient(
        lambda x: A @ x, b, tol=1e-14, max_iter=5000,
        stagnation_window=25,
    )
    assert not res.converged
    assert res.breakdown is not None
    assert res.breakdown.kind == "stagnation"
    assert res.iterations < 5000


def test_restart_recovers_from_transient_fault(spd_system):
    dense, x_true, b = spd_system
    csr = CSRMatrix.from_dense(dense)
    # Exactly one application (the 3rd) is faulted; restart re-seeds
    # r = b - A·x from the still-finite iterate and converges.
    res = conjugate_gradient(
        _faulty_after(csr.spmv, 0, fail_times={3}),
        b, tol=1e-10, restart=True,
    )
    assert res.converged
    assert res.breakdown is None
    assert np.allclose(res.x, x_true, atol=1e-5)


def test_second_breakdown_is_final_even_with_restart(spd_system):
    dense, _, b = spd_system
    csr = CSRMatrix.from_dense(dense)
    res = conjugate_gradient(
        _faulty_after(csr.spmv, 2), b, tol=1e-12, restart=True,
        max_iter=500,
    )
    assert not res.converged
    assert res.breakdown is not None
    assert res.breakdown.kind == "nonfinite"


def test_breakdown_counts_warning(spd_system):
    from repro.obs import reset_warning_counts, warning_counts

    dense, _, b = spd_system
    csr = CSRMatrix.from_dense(dense)
    reset_warning_counts()
    conjugate_gradient(_faulty_after(csr.spmv, 1), b, max_iter=50)
    assert warning_counts().get("resilience.cg_breakdown") == 1
