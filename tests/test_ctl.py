"""Unit + property tests for the CSX ctl byte-stream codec (Fig. 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.csx.ctl import (
    build_pattern_table,
    decode_ctl,
    decode_pattern_table,
    encode_ctl,
    encode_pattern_table,
)
from repro.formats.csx.substructures import (
    DELTA8,
    DELTA16,
    PatternKey,
    PatternType,
    Unit,
    delta_pattern_for,
)


def _invert(table):
    return {i: p for p, i in table.items()}


def make_horizontal(row, col, length, stride=1):
    return Unit(PatternKey(PatternType.HORIZONTAL, (stride,)), row, col, length)


def make_delta(row, cols):
    cols = np.asarray(cols, dtype=np.int64)
    gaps_max = int(np.diff(cols).max()) if cols.size > 1 else 0
    return Unit(
        delta_pattern_for(gaps_max), row, int(cols[0]), len(cols), cols=cols
    )


def test_fixed_ids_for_delta_patterns():
    table = build_pattern_table([])
    assert table[DELTA8] == 0
    assert table[DELTA16] == 1


def test_dynamic_ids_in_appearance_order():
    units = [
        make_horizontal(0, 0, 4, stride=2),
        make_horizontal(1, 0, 4, stride=1),
        make_horizontal(2, 0, 4, stride=2),
    ]
    table = build_pattern_table(units)
    assert table[PatternKey(PatternType.HORIZONTAL, (2,))] == 3
    assert table[PatternKey(PatternType.HORIZONTAL, (1,))] == 4


def test_pattern_table_roundtrip():
    units = [
        make_horizontal(0, 0, 4),
        Unit(PatternKey(PatternType.BLOCK, (2, 3)), 1, 0, 6),
        Unit(PatternKey(PatternType.DIAGONAL, (2,)), 3, 0, 4),
    ]
    table = build_pattern_table(units)
    buf = encode_pattern_table(table)
    decoded, consumed = decode_pattern_table(buf)
    assert consumed == len(buf)
    assert decoded == _invert(table)


def test_empty_pattern_table_decode_rejected():
    with pytest.raises(ValueError):
        decode_pattern_table(b"")


def test_basic_roundtrip():
    units = [
        make_delta(0, [0, 5, 9]),
        make_horizontal(0, 20, 4),
        make_horizontal(2, 3, 5),
        make_delta(5, [100, 400]),
    ]
    table = build_pattern_table(units)
    ctl = encode_ctl(units, table)
    decoded = decode_ctl(ctl, _invert(table))
    assert len(decoded) == len(units)
    for u, d in zip(units, decoded):
        assert (u.pattern, u.row, u.col, u.length) == (
            d.pattern, d.row, d.col, d.length,
        )
        if u.pattern.is_delta:
            assert np.array_equal(u.cols, d.cols)


def test_row_jump_encoding():
    units = [make_horizontal(0, 0, 4), make_horizontal(100, 0, 4)]
    table = build_pattern_table(units)
    ctl = encode_ctl(units, table)
    decoded = decode_ctl(ctl, _invert(table))
    assert decoded[1].row == 100


def test_first_unit_not_at_row_zero():
    units = [make_horizontal(7, 3, 4)]
    table = build_pattern_table(units)
    decoded = decode_ctl(encode_ctl(units, table), _invert(table))
    assert decoded[0].row == 7 and decoded[0].col == 3


def test_units_must_be_row_sorted():
    units = [make_horizontal(5, 0, 4), make_horizontal(2, 0, 4)]
    table = build_pattern_table(units)
    with pytest.raises(ValueError):
        encode_ctl(units, table)


def test_units_must_be_col_sorted_within_row():
    units = [make_horizontal(5, 10, 4), make_horizontal(5, 0, 4)]
    table = build_pattern_table(units)
    with pytest.raises(ValueError):
        encode_ctl(units, table)


def test_wide_delta_body():
    cols = np.array([0, 70000, 140000])
    units = [make_delta(0, cols)]
    assert units[0].pattern.params[0] == 4  # needs 32-bit gaps
    table = build_pattern_table(units)
    decoded = decode_ctl(encode_ctl(units, table), _invert(table))
    assert np.array_equal(decoded[0].cols, cols)


def test_gap_overflow_rejected():
    # Force an 8-bit delta unit whose gaps exceed one byte.
    cols = np.array([0, 300])
    bad = Unit(DELTA8, 0, 0, 2, cols=cols)
    table = build_pattern_table([bad])
    with pytest.raises(ValueError):
        encode_ctl([bad], table)


def test_truncated_ctl_raises():
    units = [make_delta(0, [0, 5, 9])]
    table = build_pattern_table(units)
    ctl = encode_ctl(units, table)
    with pytest.raises(ValueError):
        decode_ctl(ctl[:-1], _invert(table))


def test_unknown_pattern_id_raises():
    units = [make_horizontal(0, 0, 4)]
    table = build_pattern_table(units)
    ctl = encode_ctl(units, table)
    with pytest.raises(ValueError):
        decode_ctl(ctl, {0: DELTA8})  # table missing the dynamic id


# ----------------------------------------------------------------------
# Property: encode→decode is the identity on sorted unit streams.
# ----------------------------------------------------------------------
@st.composite
def unit_streams(draw):
    n_units = draw(st.integers(1, 20))
    units = []
    row = 0
    for _ in range(n_units):
        row += draw(st.integers(0, 5))
        first_in_row = not units or units[-1].row != row
        base_col = 0 if first_in_row else units[-1].col
        col = base_col + draw(st.integers(0 if first_in_row else 1, 1000))
        kind = draw(st.sampled_from(["delta", "horizontal", "block"]))
        if kind == "delta":
            length = draw(st.integers(1, 6))
            gaps = draw(
                st.lists(
                    st.integers(1, 5000), min_size=length - 1,
                    max_size=length - 1,
                )
            )
            cols = np.concatenate(([col], col + np.cumsum(gaps))).astype(
                np.int64
            ) if gaps else np.array([col], dtype=np.int64)
            units.append(make_delta(row, cols))
        elif kind == "horizontal":
            stride = draw(st.integers(1, 4))
            units.append(make_horizontal(row, col, draw(st.integers(2, 8)), stride))
        else:
            r, c = draw(st.sampled_from([(2, 2), (2, 3), (3, 3)]))
            units.append(
                Unit(PatternKey(PatternType.BLOCK, (r, c)), row, col, r * c)
            )
    return units


@given(unit_streams())
@settings(max_examples=60, deadline=None)
def test_ctl_roundtrip_property(units):
    table = build_pattern_table(units)
    ctl = encode_ctl(units, table)
    decoded = decode_ctl(ctl, _invert(table))
    assert len(decoded) == len(units)
    for u, d in zip(units, decoded):
        assert (u.pattern, u.row, u.col, u.length) == (
            d.pattern, d.row, d.col, d.length,
        )
        if u.pattern.is_delta:
            assert np.array_equal(u.cols, d.cols)
