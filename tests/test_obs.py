"""Unit tests for the observability layer itself (``repro.obs``):
tracer semantics, disabled-mode no-ops, thread safety of the
per-thread buffers, statistics helpers, warning counters and the
exporter round-trip."""

import gc
import json
import threading
import warnings

import numpy as np
import pytest

from repro import obs
from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    TRACE_SCHEMA,
    Tracer,
    active,
    chrome_events,
    load_trace,
    percentile,
    reset_warning_counts,
    set_active,
    summarize,
    summarize_ns,
    text_report,
    trace_document,
    tracing,
    validate_trace,
    warn,
    warning_counts,
    write_trace,
)
from repro.formats import SSSMatrix
from repro.matrices.generators import grid_laplacian_2d
from repro.parallel import ParallelSymmetricSpMV, partition_rows_equal


# ---------------------------------------------------------------------
# Disabled mode: the no-op identity
# ---------------------------------------------------------------------
def test_default_active_is_null_tracer():
    assert active() is NULL_TRACER
    assert not NULL_TRACER.enabled


def test_disabled_span_is_shared_noop_singleton():
    t = Tracer(enabled=False)
    s1 = t.span("anything", attr=1)
    s2 = t.span("other")
    assert s1 is NULL_SPAN and s2 is NULL_SPAN
    with s1:
        pass  # must be a working context manager
    assert t.events() == []


def test_disabled_count_and_event_record_nothing():
    t = Tracer(enabled=False)
    t.count("c", 5)
    t.event("e", detail=1)
    assert t.events() == []
    assert t.counters() == {}
    assert t.n_threads_seen() == 0


# ---------------------------------------------------------------------
# Recording: spans, nesting, events, counters
# ---------------------------------------------------------------------
def test_span_records_duration_and_name():
    t = Tracer()
    with t.span("work", tag="x"):
        pass
    [(buf, ev)] = t.events()
    assert ev.name == "work"
    assert ev.dur_ns >= 0 and not ev.is_instant
    assert ev.attrs == {"tag": "x"}
    assert buf.ident == threading.get_ident()


def test_span_nesting_depths():
    t = Tracer()
    with t.span("outer"):
        with t.span("inner"):
            with t.span("innermost"):
                pass
    by_name = {ev.name: ev for _, ev in t.events()}
    assert by_name["outer"].depth == 0
    assert by_name["inner"].depth == 1
    assert by_name["innermost"].depth == 2
    # Inner spans close first, so durations nest monotonically.
    assert by_name["outer"].dur_ns >= by_name["inner"].dur_ns
    assert by_name["inner"].dur_ns >= by_name["innermost"].dur_ns


def test_instant_events_and_counters():
    t = Tracer()
    t.event("iter", residual=0.5)
    t.count("hits")
    t.count("hits", 2)
    t.count("bytes", 100.0)
    [(_, ev)] = [(b, e) for b, e in t.events() if e.is_instant]
    assert ev.name == "iter" and ev.attrs == {"residual": 0.5}
    assert t.counters() == {"hits": 3, "bytes": 100.0}


def test_clear_drops_data_but_keeps_recording():
    t = Tracer()
    with t.span("a"):
        pass
    t.count("c")
    t.clear()
    assert t.events() == [] and t.counters() == {}
    with t.span("b"):
        pass
    assert [ev.name for _, ev in t.events()] == ["b"]


def test_span_durations_ns_groups_by_name():
    t = Tracer()
    for _ in range(3):
        with t.span("x"):
            pass
    t.event("x-instant")
    durs = t.span_durations_ns()
    assert list(durs) == ["x"] and len(durs["x"]) == 3


# ---------------------------------------------------------------------
# Thread safety: per-thread buffers, no cross-thread interleaving
# ---------------------------------------------------------------------
def test_many_threads_record_without_loss():
    t = Tracer()
    n_threads, n_spans = 8, 200

    def work(i):
        for j in range(n_spans):
            with t.span("w", thread=i):
                t.count("spans")

    threads = [
        threading.Thread(target=work, args=(i,)) for i in range(n_threads)
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    assert t.n_threads_seen() == n_threads
    assert len(t.events()) == n_threads * n_spans
    assert t.counters() == {"spans": n_threads * n_spans}
    # One buffer per worker, each holding exactly its own spans (the
    # OS may reuse thread idents, so group by buffer, not by ident).
    per_buf = {}
    for buf, ev in t.events():
        per_buf.setdefault(id(buf), []).append(ev)
    assert len(per_buf) == n_threads
    assert all(len(evs) == n_spans for evs in per_buf.values())


# ---------------------------------------------------------------------
# Active-tracer management
# ---------------------------------------------------------------------
def test_tracing_installs_and_restores():
    before = active()
    with tracing() as t:
        assert active() is t and t.enabled
        with t.span("inside"):
            pass
    assert active() is before


def test_tracing_restores_on_exception():
    before = active()
    with pytest.raises(RuntimeError):
        with tracing():
            raise RuntimeError("boom")
    assert active() is before


def test_set_active_none_means_null():
    prev = set_active(None)
    try:
        assert active() is NULL_TRACER
    finally:
        set_active(prev)


# ---------------------------------------------------------------------
# Warning counters (always on)
# ---------------------------------------------------------------------
def test_warn_counts_without_active_tracer():
    reset_warning_counts()
    warn("leak")
    warn("leak", 2)
    assert warning_counts() == {"leak": 3}
    reset_warning_counts()
    assert warning_counts() == {}


def test_warn_mirrors_into_active_tracer():
    reset_warning_counts()
    with tracing() as t:
        warn("leak")
    assert t.counters() == {"warn.leak": 1}
    assert warning_counts() == {"leak": 1}
    reset_warning_counts()


def test_unclosed_bound_operator_warns_on_gc():
    reset_warning_counts()
    sss = SSSMatrix.from_coo(grid_laplacian_2d(8, 8))
    parts = partition_rows_equal(sss.n_rows, 2)
    bound = ParallelSymmetricSpMV(sss, parts, "indexed").bind()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        del bound
        gc.collect()
    assert warning_counts().get("bound_operator.unclosed_gc") == 1
    assert any(issubclass(w.category, ResourceWarning) for w in caught)
    reset_warning_counts()


def test_closed_bound_operator_gc_is_silent():
    reset_warning_counts()
    sss = SSSMatrix.from_coo(grid_laplacian_2d(8, 8))
    parts = partition_rows_equal(sss.n_rows, 2)
    bound = ParallelSymmetricSpMV(sss, parts, "indexed").bind()
    bound.close()
    del bound
    gc.collect()
    assert "bound_operator.unclosed_gc" not in warning_counts()


# ---------------------------------------------------------------------
# Statistics helpers
# ---------------------------------------------------------------------
def test_percentile_matches_numpy():
    rng = np.random.default_rng(0)
    data = rng.standard_normal(101).tolist()
    for q in (0, 25, 50, 75, 95, 100):
        assert percentile(data, q) == pytest.approx(
            float(np.percentile(data, q))
        )


def test_percentile_edge_cases():
    assert percentile([7.0], 95) == 7.0
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_summarize_ns():
    s = summarize_ns([1e6, 2e6, 3e6, 4e6])
    assert s["count"] == 4
    assert s["total_ms"] == pytest.approx(10.0)
    assert s["mean_ms"] == pytest.approx(2.5)
    assert s["p50_ms"] == pytest.approx(2.5)
    assert s["min_ms"] == 1.0 and s["max_ms"] == 4.0
    with pytest.raises(ValueError):
        summarize_ns([])


# ---------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------
def _recorded_tracer() -> Tracer:
    t = Tracer()
    with t.span("phase", tid=0):
        with t.span("sub"):
            pass
        t.event("tick", i=1)
    t.count("bytes", 64)
    return t


def test_chrome_events_shape():
    evs = chrome_events(_recorded_tracer())
    phs = [e["ph"] for e in evs]
    assert phs.count("M") == 1       # one thread -> one name record
    assert phs.count("X") == 2 and phs.count("i") == 1
    for e in evs:
        assert {"name", "ph", "pid", "tid"} <= set(e)
        if e["ph"] == "X":
            assert e["ts"] >= 0 and e["dur"] >= 0
    # Metadata first, then by timestamp.
    ts = [e["ts"] for e in evs if "ts" in e]
    assert ts == sorted(ts)


def test_summarize_tracer():
    s = summarize(_recorded_tracer())
    assert set(s["spans"]) == {"phase", "sub"}
    assert s["spans"]["phase"]["count"] == 1
    assert s["counters"] == {"bytes": 64}
    assert s["n_instant_events"] == 1
    assert s["n_threads"] == 1


def test_trace_round_trip_and_validation(tmp_path):
    path = tmp_path / "nested" / "trace.json"
    write_trace(path, _recorded_tracer(), meta={"cmd": "test"})
    doc = load_trace(path)
    assert validate_trace(doc) == []
    assert doc["schema"] == TRACE_SCHEMA
    assert doc["meta"] == {"cmd": "test"}
    # The file is plain JSON a Chrome/Perfetto loader accepts: a dict
    # with a traceEvents list.
    raw = json.loads(path.read_text())
    assert isinstance(raw["traceEvents"], list)


def test_validate_catches_malformed_documents():
    assert validate_trace([]) != []
    assert validate_trace({"schema": "nope"}) != []
    doc = trace_document(_recorded_tracer())
    doc["traceEvents"].append({"name": "bad", "ph": "Z", "pid": 0, "tid": 0})
    assert any("unknown ph" in p for p in validate_trace(doc))
    doc2 = trace_document(_recorded_tracer())
    doc2["summary"]["spans"]["phase"].pop("p95_ms")
    assert any("p95_ms" in p for p in validate_trace(doc2))
    doc3 = trace_document(_recorded_tracer())
    doc3["summary"]["counters"]["bytes"] = "lots"
    assert any("counters" in p for p in validate_trace(doc3))


def test_text_report_from_tracer_and_document():
    t = _recorded_tracer()
    for source in (t, trace_document(t)):
        report = text_report(source, title="T")
        assert "phase" in report and "sub" in report
        assert "bytes" in report
        assert "p50" in report


def test_obs_package_reexports():
    # The package facade must expose the full tool set.
    for name in ("Tracer", "tracing", "write_trace", "validate_trace",
                 "summarize_ns", "percentile", "text_report"):
        assert hasattr(obs, name)


# ---------------------------------------------------------------------
# Schema v2: counter tracks and the embedded metrics snapshot
# ---------------------------------------------------------------------
def test_statistics_reject_nan():
    with pytest.raises(ValueError, match="NaN"):
        percentile([1.0, float("nan"), 3.0], 50)
    with pytest.raises(ValueError, match="NaN"):
        summarize_ns([1e6, float("nan")])


def test_chrome_counter_tracks_ramp():
    t = _recorded_tracer()
    evs = chrome_events(t)
    tracks = [e for e in evs if e["ph"] == "C"]
    assert len(tracks) == 2  # one counter -> zero sample + total sample
    assert all(e["name"] == "bytes" for e in tracks)
    by_ts = sorted(tracks, key=lambda e: e["ts"])
    assert by_ts[0]["ts"] == 0.0 and by_ts[0]["args"]["value"] == 0
    assert by_ts[-1]["args"]["value"] == 64
    # The final sample sits at the last span/event timestamp, so the
    # ramp spans the whole timeline.
    last_ts = max(
        e["ts"] + e.get("dur", 0.0) for e in evs if e["ph"] == "X"
    )
    assert by_ts[-1]["ts"] == pytest.approx(last_ts)


def test_trace_v2_round_trips_metrics_snapshot(tmp_path):
    t = _recorded_tracer()
    t.metrics.histogram("op.apply_ns", backend="serial").record_many(
        [100.0, 5000.0]
    )
    t.metrics.counter("applies").inc(2)
    path = write_trace(tmp_path / "v2.json", t)
    doc = load_trace(path)
    assert validate_trace(doc) == []
    assert doc["schema"] == "repro-trace-v2"
    metrics = doc["summary"]["metrics"]
    hist = metrics["histograms"][0]
    assert hist["name"] == "op.apply_ns"
    assert hist["labels"] == {"backend": "serial"}
    assert hist["summary"]["count"] == 2
    assert metrics["counters"][0] == {
        "name": "applies", "labels": {}, "value": 2.0,
    }
    # The bucket data reconstructs the histogram exactly.
    from repro.obs import LogHistogram

    back = LogHistogram.from_dict(hist["data"])
    assert back.count == 2 and back.max_seen == 5000.0


def test_validate_v2_requires_metrics_section():
    doc = trace_document(_recorded_tracer())
    del doc["summary"]["metrics"]
    assert any("summary.metrics" in p for p in validate_trace(doc))
    doc2 = trace_document(_recorded_tracer())
    doc2["summary"]["metrics"]["histograms"] = {"not": "a list"}
    assert any(
        "metrics.histograms" in p for p in validate_trace(doc2)
    )
    doc3 = trace_document(_recorded_tracer())
    doc3["summary"]["metrics"]["counters"] = [{"labels": {}}]  # no name
    assert any("needs a name" in p for p in validate_trace(doc3))
    # Malformed counter-track events are caught.
    doc4 = trace_document(_recorded_tracer())
    doc4["traceEvents"].append(
        {"name": "c", "ph": "C", "pid": 0, "tid": 0, "ts": 0.0,
         "args": {"value": "many"}}
    )
    assert any("numeric args" in p for p in validate_trace(doc4))


def test_validate_still_reads_v1_documents():
    """v1 documents (no counter tracks, no summary.metrics) stay
    readable — the v2 requirements only bind v2 documents."""
    doc = trace_document(_recorded_tracer())
    doc["schema"] = "repro-trace-v1"
    doc["traceEvents"] = [
        e for e in doc["traceEvents"] if e["ph"] != "C"
    ]
    del doc["summary"]["metrics"]
    assert validate_trace(doc) == []
