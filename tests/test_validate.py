"""Unit tests for the shared validation layer (repro.formats.validate)."""

import numpy as np
import pytest

from repro.formats import (
    BoundsError,
    CanonicalityError,
    COOMatrix,
    CSBSymMatrix,
    CSXSymMatrix,
    DTypeError,
    NonFiniteError,
    ParseError,
    PartitionError,
    ShapeError,
    SSSMatrix,
    SymmetryError,
    TriangleConventionError,
    ValidationError,
)
from repro.formats.validate import (
    check_driver_x,
    check_finite,
    check_index_bounds,
    check_partitions,
    prepare_driver_y,
)


# ----------------------------------------------------------------------
# Taxonomy: every error must remain catchable as the historic builtin.
# ----------------------------------------------------------------------
def test_all_errors_are_value_errors():
    for err in (
        ValidationError, ShapeError, BoundsError, NonFiniteError,
        CanonicalityError, TriangleConventionError, SymmetryError,
        ParseError, PartitionError, DTypeError,
    ):
        assert issubclass(err, ValueError)


def test_dtype_error_is_also_type_error():
    assert issubclass(DTypeError, TypeError)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def test_check_finite_accepts_finite():
    check_finite(np.array([1.0, -2.0, 0.0]), "vals")


@pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
def test_check_finite_rejects_nonfinite(bad):
    with pytest.raises(NonFiniteError):
        check_finite(np.array([1.0, bad]), "vals")


def test_check_index_bounds():
    check_index_bounds(np.array([0, 2]), np.array([1, 0]), (3, 2))
    with pytest.raises(BoundsError):
        check_index_bounds(np.array([3]), np.array([0]), (3, 2))
    with pytest.raises(BoundsError):
        check_index_bounds(np.array([0]), np.array([-1]), (3, 2))


def test_check_partitions():
    check_partitions([(0, 2), (2, 5)], 5)
    with pytest.raises(PartitionError):
        check_partitions([(0, 2), (3, 5)], 5)  # gap
    with pytest.raises(PartitionError):
        check_partitions([(0, 3), (2, 5)], 5)  # overlap
    with pytest.raises(PartitionError):
        check_partitions([(0, 5)], 6)  # short cover


def test_check_driver_x():
    # x is upcast (historic driver behavior); shape is strict.
    x = check_driver_x(np.zeros(3, dtype=np.float32), 3)
    assert x.dtype == np.float64
    with pytest.raises(ValueError):
        check_driver_x(np.zeros(4), 3)


def test_prepare_driver_y_allocates_and_validates():
    x = np.zeros(3)
    y = prepare_driver_y(None, 3, x)
    assert y.shape == (3,) and y.dtype == np.float64
    with pytest.raises(ValueError):
        prepare_driver_y(np.zeros(2), 3, x)
    with pytest.raises(TypeError):
        prepare_driver_y(np.zeros(3, dtype=np.float32), 3, x)


# ----------------------------------------------------------------------
# Construction-time checks
# ----------------------------------------------------------------------
def test_coo_rejects_nan_by_default():
    with pytest.raises(NonFiniteError):
        COOMatrix((2, 2), [0], [1], [np.nan])


def test_coo_allows_nonfinite_when_opted_in():
    coo = COOMatrix((2, 2), [0], [1], [np.nan], allow_nonfinite=True)
    assert np.isnan(coo.vals).any()
    # Derived objects of a permissive matrix must not start raising.
    assert np.isnan(coo.transpose().vals).any()


def test_coo_tracks_canonicality():
    canon = COOMatrix((2, 2), [1, 0], [0, 1], [1.0, 2.0])
    assert canon.is_canonical
    # Entries are always sorted at construction; non-canonical means
    # duplicate coordinates survived (sum_duplicates=False).
    dirty = COOMatrix(
        (2, 2), [1, 1], [0, 0], [1.0, 2.0], sum_duplicates=False
    )
    assert not dirty.is_canonical
    nodup = COOMatrix(
        (2, 2), [1, 0], [0, 1], [1.0, 2.0], sum_duplicates=False
    )
    assert nodup.is_canonical


# ----------------------------------------------------------------------
# Symmetric builders raise the typed error (still a ValueError).
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "build",
    [
        lambda c: SSSMatrix.from_coo(c),
        lambda c: CSXSymMatrix(c),
        lambda c: CSBSymMatrix(c, beta=2),
    ],
    ids=["sss", "csx-sym", "csb-sym"],
)
def test_symmetric_builders_raise_symmetry_error(build):
    asym = COOMatrix((2, 2), [0], [1], [1.0])
    with pytest.raises(SymmetryError):
        build(asym)
    with pytest.raises(ValueError):
        build(asym)
