"""Unit tests for the CSX substructure taxonomy."""

import numpy as np
import pytest

from repro.formats.csx.substructures import (
    DELTA8,
    DELTA16,
    DELTA32,
    MAX_UNIT_LEN,
    PatternKey,
    PatternType,
    Unit,
    delta_pattern_for,
    unit_column_span,
    unit_coordinates,
)


def test_delta_pattern_selection():
    assert delta_pattern_for(0) == DELTA8
    assert delta_pattern_for(255) == DELTA8
    assert delta_pattern_for(256) == DELTA16
    assert delta_pattern_for(65535) == DELTA16
    assert delta_pattern_for(65536) == DELTA32
    with pytest.raises(ValueError):
        delta_pattern_for(-1)
    with pytest.raises(ValueError):
        delta_pattern_for(2**32)


def test_horizontal_coordinates():
    u = Unit(PatternKey(PatternType.HORIZONTAL, (2,)), row=5, col=10, length=4)
    rows, cols = unit_coordinates(u)
    assert np.array_equal(rows, [5, 5, 5, 5])
    assert np.array_equal(cols, [10, 12, 14, 16])


def test_vertical_coordinates():
    u = Unit(PatternKey(PatternType.VERTICAL, (1,)), row=2, col=7, length=3)
    rows, cols = unit_coordinates(u)
    assert np.array_equal(rows, [2, 3, 4])
    assert np.array_equal(cols, [7, 7, 7])


def test_diagonal_coordinates():
    u = Unit(PatternKey(PatternType.DIAGONAL, (2,)), row=1, col=0, length=3)
    rows, cols = unit_coordinates(u)
    assert np.array_equal(rows, [1, 3, 5])
    assert np.array_equal(cols, [0, 2, 4])


def test_anti_diagonal_coordinates():
    u = Unit(
        PatternKey(PatternType.ANTI_DIAGONAL, (1,)), row=2, col=9, length=3
    )
    rows, cols = unit_coordinates(u)
    assert np.array_equal(rows, [2, 3, 4])
    assert np.array_equal(cols, [9, 8, 7])


def test_block_coordinates_row_major():
    u = Unit(PatternKey(PatternType.BLOCK, (2, 3)), row=4, col=1, length=6)
    rows, cols = unit_coordinates(u)
    assert np.array_equal(rows, [4, 4, 4, 5, 5, 5])
    assert np.array_equal(cols, [1, 2, 3, 1, 2, 3])


def test_block_length_must_match_shape():
    with pytest.raises(ValueError):
        Unit(PatternKey(PatternType.BLOCK, (2, 3)), row=0, col=0, length=5)


def test_delta_unit_requires_columns():
    with pytest.raises(ValueError):
        Unit(DELTA8, row=0, col=0, length=2)


def test_delta_unit_columns_validated():
    with pytest.raises(ValueError):
        Unit(DELTA8, row=0, col=0, length=2, cols=np.array([1, 2]))  # col mismatch
    with pytest.raises(ValueError):
        Unit(DELTA8, row=0, col=2, length=2, cols=np.array([2, 2]))  # not increasing
    with pytest.raises(ValueError):
        Unit(DELTA8, row=0, col=0, length=3, cols=np.array([0, 1]))  # length


def test_delta_unit_coordinates():
    u = Unit(DELTA16, row=3, col=0, length=3, cols=np.array([0, 300, 900]))
    rows, cols = unit_coordinates(u)
    assert np.array_equal(rows, [3, 3, 3])
    assert np.array_equal(cols, [0, 300, 900])


def test_unit_length_bounds():
    with pytest.raises(ValueError):
        Unit(PatternKey(PatternType.HORIZONTAL, (1,)), 0, 0, 0)
    with pytest.raises(ValueError):
        Unit(PatternKey(PatternType.HORIZONTAL, (1,)), 0, 0, MAX_UNIT_LEN + 1)


def test_column_span():
    u = Unit(
        PatternKey(PatternType.ANTI_DIAGONAL, (1,)), row=2, col=9, length=4
    )
    assert unit_column_span(u) == (6, 9)
    h = Unit(PatternKey(PatternType.HORIZONTAL, (3,)), row=0, col=2, length=3)
    assert unit_column_span(h) == (2, 8)


def test_pattern_key_ordering_and_str():
    a = PatternKey(PatternType.HORIZONTAL, (1,))
    b = PatternKey(PatternType.VERTICAL, (1,))
    assert a < b
    assert str(a) == "horizontal(d=1)"
    assert str(DELTA8) == "delta8"
    assert str(PatternKey(PatternType.BLOCK, (3, 3))) == "block3x3"
    assert DELTA32.is_delta and not a.is_delta
