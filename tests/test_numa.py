"""Unit tests for the NUMA allocation-policy model (§V-A)."""

import pytest

from repro.machine import (
    AllocationPolicy,
    DUNNINGTON,
    GAINESTOWN,
    effective_bandwidth,
    remote_access_factor,
)
from repro.machine.numa import REMOTE_EFFICIENCY


def test_smp_unaffected_by_placement():
    for policy in AllocationPolicy:
        assert effective_bandwidth(DUNNINGTON, 24, policy) == (
            DUNNINGTON.bandwidth_gbps(24)
        )
        assert remote_access_factor(DUNNINGTON, 24, policy) == 1.0


def test_local_is_best():
    for p in (2, 4, 8, 16):
        bws = {
            policy: effective_bandwidth(GAINESTOWN, p, policy)
            for policy in AllocationPolicy
        }
        assert bws[AllocationPolicy.LOCAL] >= bws[
            AllocationPolicy.INTERLEAVED
        ]
        assert bws[AllocationPolicy.INTERLEAVED] >= bws[
            AllocationPolicy.FIRST_TOUCH_SERIAL
        ]


def test_first_touch_capped_by_one_socket():
    bw = effective_bandwidth(
        GAINESTOWN, 16, AllocationPolicy.FIRST_TOUCH_SERIAL
    )
    assert bw <= GAINESTOWN.sustained_bw_gbps_per_socket


def test_first_touch_hurts_at_scale_not_single_thread():
    single = effective_bandwidth(
        GAINESTOWN, 1, AllocationPolicy.FIRST_TOUCH_SERIAL
    )
    # One thread on socket 0 with local data: full single-thread bw.
    assert single == pytest.approx(GAINESTOWN.per_thread_bw_gbps)
    full_ft = effective_bandwidth(
        GAINESTOWN, 16, AllocationPolicy.FIRST_TOUCH_SERIAL
    )
    full_local = effective_bandwidth(
        GAINESTOWN, 16, AllocationPolicy.LOCAL
    )
    # The paper's allocator exists because this gap is large.
    assert full_ft < 0.6 * full_local


def test_interleaved_factor_formula():
    f = remote_access_factor(
        GAINESTOWN, 8, AllocationPolicy.INTERLEAVED
    )
    expected = 0.5 + 0.5 * REMOTE_EFFICIENCY
    assert f == pytest.approx(expected)


def test_local_factor_is_one():
    assert remote_access_factor(
        GAINESTOWN, 8, AllocationPolicy.LOCAL
    ) == 1.0


def test_first_touch_factor_weights_socket0_threads():
    # 2 threads round-robin: one on socket 0 (local), one remote.
    f = remote_access_factor(
        GAINESTOWN, 2, AllocationPolicy.FIRST_TOUCH_SERIAL
    )
    assert f == pytest.approx(0.5 + 0.5 * REMOTE_EFFICIENCY)
