"""End-to-end integration tests: suite matrix → formats → parallel
kernels → performance model → CG, mirroring the experiment pipeline."""

import numpy as np
import pytest

from repro.analysis import build_format, preprocessing_cost
from repro.formats import CSRMatrix, CSXSymMatrix, SSSMatrix
from repro.machine import DUNNINGTON, GAINESTOWN, predict_serial_csr, predict_spmv
from repro.matrices import get_entry
from repro.parallel import ParallelSpMV, ParallelSymmetricSpMV
from repro.reorder import bandwidth_stats, rcm_reorder
from repro.solvers import conjugate_gradient


@pytest.fixture(scope="module")
def hood():
    return get_entry("hood").build(scale=0.01)


@pytest.fixture(scope="module")
def thermal():
    return get_entry("thermal2").build(scale=0.005)


def test_full_format_pipeline_on_suite_matrix(hood, rng):
    x = rng.standard_normal(hood.n_cols)
    expected = hood.to_scipy() @ x
    results = {}
    for name in ("csr", "csx", "sss", "csx-sym"):
        matrix, parts = build_format(hood, name, n_threads=8)
        if name in ("sss", "csx-sym"):
            kernel = ParallelSymmetricSpMV(matrix, parts, "indexed")
        else:
            kernel = ParallelSpMV(matrix, parts)
        results[name] = kernel(x)
    for name, y in results.items():
        assert np.allclose(y, expected), name


def test_block_matrix_is_csx_friendly(hood):
    """Structural matrices must reach high substructure coverage."""
    csxs, _ = build_format(hood, "csx-sym", n_threads=4)
    assert csxs.substructure_coverage() > 0.5
    csr = CSRMatrix.from_coo(hood)
    assert csxs.compression_ratio_vs(csr) > 0.55


def test_model_predictions_ordered_on_suite_matrix(hood):
    """At 24 Dunnington threads: CSX-Sym ≤ SSS-idx < CSR time."""
    times = {}
    for name in ("csr", "sss", "csx-sym"):
        matrix, parts = build_format(hood, name, n_threads=24)
        red = "indexed" if name != "csr" else None
        times[name] = predict_spmv(
            matrix, parts, DUNNINGTON, reduction=red
        ).total
    assert times["csx-sym"] < times["csr"]
    assert times["sss"] < times["csr"]


def test_rcm_improves_corner_case_model_time(thermal):
    """Section V-D: reordering helps the symmetric kernel."""
    reordered, _ = rcm_reorder(thermal)
    assert (
        bandwidth_stats(reordered).avg_distance
        < 0.3 * bandwidth_stats(thermal).avg_distance
    )
    t = {}
    for tag, coo in (("native", thermal), ("rcm", reordered)):
        sss, parts = build_format(coo, "sss", n_threads=16)
        t[tag] = predict_spmv(
            sss, parts, GAINESTOWN, reduction="indexed"
        ).total
    assert t["rcm"] < t["native"]


def test_rcm_shrinks_index_pairs(thermal):
    """Reordering reduces thread interference (§V-D reason 2)."""
    from repro.parallel import IndexedReduction, partition_nnz_balanced

    reordered, _ = rcm_reorder(thermal)
    counts = {}
    for tag, coo in (("native", thermal), ("rcm", reordered)):
        sss = SSSMatrix.from_coo(coo)
        parts = partition_nnz_balanced(sss.expanded_row_nnz(), 16)
        counts[tag] = IndexedReduction(sss, parts).n_pairs
    assert counts["rcm"] < counts["native"]


def test_cg_on_suite_matrix_all_formats(hood, rng):
    x_true = rng.standard_normal(hood.n_rows)
    b = hood.to_scipy() @ x_true
    for name in ("csr", "sss", "csx-sym"):
        matrix, parts = build_format(hood, name, n_threads=4)
        if name == "csr":
            kernel = matrix.spmv
        else:
            kernel = ParallelSymmetricSpMV(matrix, parts, "indexed")
        res = conjugate_gradient(kernel, b, tol=1e-10)
        assert res.converged, name
        assert np.allclose(res.x, x_true, atol=1e-5), name


def test_preprocessing_cost_numbers(hood):
    csr = CSRMatrix.from_coo(hood)
    csxs, _ = build_format(hood, "csx-sym", n_threads=16)
    c_d = preprocessing_cost(csxs, csr, DUNNINGTON, 24)
    c_g = preprocessing_cost(csxs, csr, GAINESTOWN, 16)
    # §V-E ballpark: tens of serial SpM×V units, NUMA more expensive.
    assert 3 < c_d.csr_spmv_equivalents < 1000
    assert c_g.csr_spmv_equivalents > c_d.csr_spmv_equivalents


def test_speedup_baseline_consistency(hood):
    csr = CSRMatrix.from_coo(hood)
    base = predict_serial_csr(csr, DUNNINGTON)
    same = predict_spmv(csr, [(0, csr.n_rows)], DUNNINGTON)
    assert base.total == pytest.approx(same.total)
    assert base.speedup_over(base) == pytest.approx(1.0)
