"""Regression tests for the concurrent-caller fixes in the executor /
bound-operator / format-cache layer.

Each test here encodes a race that existed before the corresponding
fix and fails on the pre-fix code:

* ``Executor.n_batches`` was read-modify-written without a lock, so
  concurrent ``run_batch`` callers could observe duplicate batch ids —
  which breaks chaos-plan fault attribution (faults derive from
  ``(seed, batch, tid)``) and made pool startup/shutdown racy.
* ``BoundOperator.__call__`` zeroed and filled *shared* persistent
  workspaces with no mutual exclusion, so two threads applying the
  same operator silently corrupted each other's results.
* The bounded lazy caches (``RowScatter`` flat indices, SSS partition
  splits, CSX plan scatters) mutated plain dicts from worker threads;
  eviction could yank a compiled array from under an in-flight kernel.

The drivers' own cross-backend bit-identity is covered by the
conformance suite; these tests aim threads at the *same* object on
purpose.
"""

from __future__ import annotations

import sys
import threading

import numpy as np
import pytest

from repro.formats.base import FLAT_CACHE_MAX, RowScatter
from repro.parallel import Executor, ParallelSymmetricSpMV

from tests.conformance import build_symmetric, rhs_block

pytestmark = pytest.mark.filterwarnings("error::pytest.PytestUnraisableExceptionWarning")


@pytest.fixture
def fast_switching():
    """Force frequent thread switches so interleavings that need a
    precise schedule actually happen within a short test."""
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(old)


# ----------------------------------------------------------------------
# Executor: batch-id allocation under concurrency
# ----------------------------------------------------------------------
def test_concurrent_run_batch_ids_unique_and_gap_free(fast_switching):
    """N threads x M batches must observe N*M distinct, gap-free ids.

    Pre-fix, the unsynchronized ``self.n_batches += 1`` lost updates
    under contention and two batches could share an id.
    """
    ex = Executor("serial")
    n_threads, n_batches = 8, 50
    ids: list[list[int]] = [[] for _ in range(n_threads)]
    start = threading.Barrier(n_threads)

    def worker(slot: int) -> None:
        start.wait()
        for _ in range(n_batches):
            ids[slot].append(ex.run_batch([lambda: None]))

    threads = [
        threading.Thread(target=worker, args=(i,))
        for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    seen = [b for slot in ids for b in slot]
    assert len(seen) == n_threads * n_batches
    assert sorted(seen) == list(range(n_threads * n_batches))
    assert ex.n_batches == n_threads * n_batches


def test_empty_batch_allocates_no_id():
    ex = Executor("serial")
    assert ex.run_batch([]) is None
    assert ex.n_batches == 0
    assert ex.run_batch([lambda: None]) == 0


def test_concurrent_threaded_batches_with_close(fast_switching):
    """run_batch racing close() must never crash on a torn-down pool
    (pre-fix: submit could hit 'cannot schedule new futures after
    shutdown')."""
    ex = Executor("threads", max_workers=2)
    hits = []
    stop = threading.Event()

    def runner() -> None:
        while not stop.is_set():
            try:
                ex.run_batch([lambda: hits.append(1)] * 3)
            except RuntimeError as exc:  # pragma: no cover - the bug
                pytest.fail(f"run_batch raced close(): {exc}")

    threads = [threading.Thread(target=runner) for _ in range(3)]
    for t in threads:
        t.start()
    for _ in range(20):
        ex.close()  # runners re-create the pool; close again
    stop.set()
    for t in threads:
        t.join()
    ex.close()
    assert hits  # work actually ran


# ----------------------------------------------------------------------
# BoundOperator: concurrent applies on one operator
# ----------------------------------------------------------------------
@pytest.mark.parametrize("reduction", ["indexed", "coloring"])
def test_bound_operator_concurrent_apply_bit_exact(
    fast_switching, reduction
):
    """Two threads hammering one bound operator must each get the
    exact result they would have gotten alone.

    Pre-fix, the shared persistent workspaces (y, locals) were zeroed
    and accumulated by both callers at once, corrupting both results.
    """
    matrix, parts = build_symmetric("random", "sss", "thirds")
    driver = ParallelSymmetricSpMV(
        matrix, parts, reduction, executor=Executor("threads", 2)
    )
    op = driver.bind()
    serial = ParallelSymmetricSpMV(matrix, parts, driver.reduction)
    xs = [rhs_block(matrix.n_rows, None, seed=s) for s in (1, 2)]
    refs = [serial(x) for x in xs]
    n_iter = 60
    failures: list[str] = []
    start = threading.Barrier(2)

    def worker(slot: int) -> None:
        x, ref = xs[slot], refs[slot]
        out = np.empty_like(ref)
        start.wait()
        for i in range(n_iter):
            op(x, out=out)
            if not np.array_equal(out, ref):
                failures.append(
                    f"thread {slot} iter {i}: max diff "
                    f"{np.abs(out - ref).max():.3e}"
                )
                return

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    op.close()
    assert not failures, failures[0]


def test_bound_operator_recover_during_applies(fast_switching):
    """recover() from a second thread must serialize against applies
    instead of re-zeroing workspaces mid-computation."""
    matrix, parts = build_symmetric("random", "sss", "thirds")
    driver = ParallelSymmetricSpMV(matrix, parts, "indexed")
    op = driver.bind()
    serial = ParallelSymmetricSpMV(matrix, parts, driver.reduction)
    x = rhs_block(matrix.n_rows, None, seed=5)
    ref = serial(x)
    stop = threading.Event()

    def recoverer() -> None:
        while not stop.is_set():
            op.recover()

    t = threading.Thread(target=recoverer)
    t.start()
    try:
        out = np.empty_like(ref)
        for _ in range(50):
            op(x, out=out)
            assert np.array_equal(out, ref)
    finally:
        stop.set()
        t.join()
        op.close()


# ----------------------------------------------------------------------
# Format caches: compile/evict/clear under concurrency
# ----------------------------------------------------------------------
def test_row_scatter_cache_stress(fast_switching):
    """Concurrent scatters across more ``k`` values than the cache
    holds, racing a clearing thread: every scatter must still land the
    correct sums (pre-fix, eviction/clear raced the flat-index build
    and scatters could see a half-built or missing index)."""
    rng = np.random.default_rng(42)
    idx = rng.integers(0, 40, size=200)
    scatter = RowScatter(idx)
    ks = list(range(1, FLAT_CACHE_MAX + 5))  # force evictions
    products = {
        k: rng.standard_normal((idx.size, k)) for k in ks
    }
    refs = {}
    for k in ks:
        y = np.zeros((40, k))
        scatter.add(y, products[k])
        refs[k] = y
    scatter.clear()

    stop = threading.Event()
    failures: list[str] = []

    def clearer() -> None:
        while not stop.is_set():
            scatter.clear()

    def worker(seed: int) -> None:
        order = list(ks)
        np.random.default_rng(seed).shuffle(order)
        for _ in range(15):
            for k in order:
                y = np.zeros((40, k))
                scatter.add(y, products[k])
                if not np.array_equal(y, refs[k]):
                    failures.append(f"k={k} scatter corrupted")
                    return

    clear_thread = threading.Thread(target=clearer)
    workers = [
        threading.Thread(target=worker, args=(s,)) for s in (1, 2, 3)
    ]
    clear_thread.start()
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    stop.set()
    clear_thread.join()
    assert not failures, failures[0]
    assert len(scatter._flat) <= FLAT_CACHE_MAX


def test_sss_partition_split_cache_stress(fast_switching, monkeypatch):
    """Concurrent binds/applies with distinct partitionings against one
    SSS matrix, with the split cache shrunk so eviction is constant:
    results must stay bit-identical to serial."""
    import repro.formats.sss as sss_mod

    monkeypatch.setattr(sss_mod, "PART_SPLIT_CACHE_MAX", 2)
    matrix, _ = build_symmetric("random", "sss", "single")
    n = matrix.n_rows
    layouts = []
    for p in (1, 2, 3, 5, 6):
        bounds = np.linspace(0, n, p + 1).astype(int)
        layouts.append(
            [(int(bounds[i]), int(bounds[i + 1])) for i in range(p)]
        )
    x = rhs_block(n, None, seed=9)
    drivers = [
        ParallelSymmetricSpMV(matrix, parts, "indexed")
        for parts in layouts
    ]
    refs = [d(x) for d in drivers]
    matrix.clear_caches()

    failures: list[str] = []
    stop = threading.Event()

    def clearer() -> None:
        while not stop.is_set():
            matrix.clear_caches()

    def worker(slot: int) -> None:
        d, ref = drivers[slot % len(drivers)], refs[slot % len(drivers)]
        for i in range(25):
            y = d(x)
            if not np.array_equal(y, ref):
                failures.append(f"driver {slot} iter {i} corrupted")
                return

    clear_thread = threading.Thread(target=clearer)
    workers = [
        threading.Thread(target=worker, args=(i,)) for i in range(5)
    ]
    clear_thread.start()
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    stop.set()
    clear_thread.join()
    assert not failures, failures[0]
