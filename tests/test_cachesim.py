"""Unit + validation tests for the exact cache simulator.

Besides testing the simulator itself, this file *validates the analytic
reuse-window estimator* of :mod:`repro.machine.cache` against exact LRU
simulation: the estimator must rank access patterns identically and
land within a reasonable factor on miss counts — that is what makes the
performance model's locality terms trustworthy.
"""

import numpy as np
import pytest

from repro.machine.cache import estimate_x_misses, reuse_window_lines
from repro.machine.cachesim import CacheConfig, CacheSim, simulate_misses


def test_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(0)
    with pytest.raises(ValueError):
        CacheConfig(64, associativity=0)
    with pytest.raises(ValueError):
        CacheConfig(32)  # smaller than a line
    with pytest.raises(ValueError):
        CacheConfig(64 * 10, associativity=4)  # 10 lines % 4 != 0


def test_geometry():
    c = CacheConfig(64 * 1024, associativity=8)
    assert c.n_lines == 1024
    assert c.n_sets == 128


def test_cold_misses_only():
    sim = CacheSim(CacheConfig(64 * 64, associativity=8))
    lines = np.arange(16)
    sim.access_lines(lines)
    assert sim.misses == 16
    sim.access_lines(lines)  # everything fits: all hits
    assert sim.misses == 16
    assert sim.accesses == 32


def test_lru_eviction_order():
    # Direct-mapped-ish: 1 set, 2 ways.
    sim = CacheSim(CacheConfig(128, associativity=2))
    sim.access_lines(np.array([0, 1]))  # fill
    sim.access_lines(np.array([0]))  # touch 0 (1 becomes LRU)
    sim.access_lines(np.array([2]))  # evicts 1
    assert sim.misses == 3
    sim.access_lines(np.array([0]))  # still resident
    assert sim.misses == 3
    sim.access_lines(np.array([1]))  # was evicted
    assert sim.misses == 4


def test_set_conflicts():
    # 2 sets × 1 way: lines 0 and 2 collide, 1 and 3 collide.
    sim = CacheSim(CacheConfig(128, associativity=1))
    sim.access_lines(np.array([0, 2, 0, 2]))
    assert sim.misses == 4  # ping-pong
    sim.reset()
    sim.access_lines(np.array([0, 1, 0, 1]))
    assert sim.misses == 2  # different sets: no conflict


def test_reset():
    sim = CacheSim(CacheConfig(64 * 8, associativity=8))
    sim.access_lines(np.arange(4))
    sim.reset()
    assert sim.misses == 0 and sim.accesses == 0
    sim.access_lines(np.arange(4))
    assert sim.misses == 4


def test_simulate_misses_element_granularity():
    # 8 doubles per line: columns 0..7 share a line.
    misses = simulate_misses(np.arange(8), cache_bytes=64 * 64)
    assert misses == 1


def test_miss_rate():
    sim = CacheSim(CacheConfig(64 * 8))
    sim.access_lines(np.array([0, 0, 0, 1]))
    assert sim.miss_rate == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Estimator validation against exact simulation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cache_kib", [32, 256])
def test_estimator_orders_patterns_like_simulator(cache_kib, rng):
    cache = cache_kib * 1024
    n = 200_000
    streams = {
        "sequential": np.tile(np.arange(2000), 10),
        "banded": (np.arange(30_000) % 4096),
        "random": rng.integers(0, n, size=30_000),
    }
    window = reuse_window_lines(cache, x_share=1.0)
    est = {k: estimate_x_misses(v, window) for k, v in streams.items()}
    sim = {k: simulate_misses(v, cache) for k, v in streams.items()}
    # Same ordering: sequential < banded < random in both models.
    assert est["sequential"] <= est["banded"] <= est["random"]
    assert sim["sequential"] <= sim["banded"] <= sim["random"]


def test_estimator_within_factor_of_simulator(rng):
    """On random streams both models are dominated by capacity misses;
    the analytic estimate must land within ~2× of exact LRU."""
    cache = 64 * 1024
    stream = rng.integers(0, 100_000, size=40_000)
    window = reuse_window_lines(cache, x_share=1.0)
    est = estimate_x_misses(stream, window)
    sim = simulate_misses(stream, cache)
    assert 0.5 * sim <= est <= 2.0 * sim


def test_estimator_exact_on_streaming(rng):
    """Pure streaming (no reuse): both models count one miss per line."""
    stream = np.arange(0, 80_000, 8)  # one access per line
    window = reuse_window_lines(32 * 1024, x_share=1.0)
    est = estimate_x_misses(stream, window)
    sim = simulate_misses(stream, 32 * 1024)
    assert est == sim == stream.size
