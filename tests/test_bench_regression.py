"""The noise-aware benchmark regression gate (benchmarks/check_regression).

Three behaviors are contractual:

* the committed baselines compared against themselves pass (a gate
  that flags its own baselines is useless);
* an injected 2x slowdown fails, with the regressed entries named;
* a ``config.host_cores`` mismatch *skips* the file with an explicit
  reason instead of comparing wall-clock across different machines.
"""

import copy
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "benchmarks"))

from check_regression import (  # noqa: E402
    ADAPTERS,
    check,
    compare_docs,
    config_mismatch,
    main,
    render,
)

RESULTS = REPO / "results"


@pytest.fixture()
def operator_doc():
    return json.loads((RESULTS / "BENCH_operator.json").read_text())


def _slowed(doc, factor=2.0):
    doc = copy.deepcopy(doc)
    for row in doc["rows"]:
        row["per_iter_ms"] *= factor
        row["per_iter_p95_ms"] *= factor
    return doc


def test_committed_baselines_pass_against_themselves():
    results, code = check(fresh_dir=RESULTS, baseline_dir=RESULTS)
    assert code == 0
    compared = [r for r in results if r["status"] != "skipped"]
    assert compared, "no committed baseline document was compared"
    assert all(r["status"] == "ok" for r in compared)
    # Every adapter key resolves on the real documents.
    for res in compared:
        assert any("ratio" in e for e in res["entries"])


def test_injected_2x_slowdown_fails(operator_doc):
    res = compare_docs(
        "BENCH_operator.json", operator_doc, _slowed(operator_doc)
    )
    assert res["status"] == "regression"
    slower = [e for e in res["entries"] if e.get("slower")]
    assert slower
    for e in slower:
        assert e["ratio"] == pytest.approx(2.0)
    # And rendered output names them.
    assert "REGRESSION" in render([res])


def test_speedup_is_not_a_regression(operator_doc):
    res = compare_docs(
        "BENCH_operator.json", operator_doc, _slowed(operator_doc, 0.5)
    )
    assert res["status"] == "ok"


def test_noise_widens_the_gate(operator_doc):
    """A 1.4x median shift inside a 2x tail-to-median spread must not
    fire: the benchmark's own repeats cannot support the verdict."""
    noisy_base = copy.deepcopy(operator_doc)
    for row in noisy_base["rows"]:
        row["per_iter_p95_ms"] = row["per_iter_ms"] * 2.0
    res = compare_docs(
        "BENCH_operator.json", noisy_base, _slowed(noisy_base, 1.4)
    )
    assert res["status"] == "ok"
    # The same shift with tight repeats fires.
    res = compare_docs(
        "BENCH_operator.json", operator_doc, _slowed(operator_doc, 1.4)
    )
    tight = [
        e for e in res["entries"]
        if "ratio" in e and e["noise"] * 1.25 < 1.4
    ]
    assert all(e["slower"] for e in tight)


def test_host_cores_mismatch_skips(operator_doc):
    fresh = _slowed(operator_doc, 10.0)  # would fail if compared
    fresh["config"]["host_cores"] = (
        operator_doc["config"]["host_cores"] or 0
    ) + 63
    res = compare_docs("BENCH_operator.json", operator_doc, fresh)
    assert res["status"] == "skipped"
    assert "host_cores" in res["reason"]
    assert "SKIP" in render([res])


def test_config_mismatch_helper():
    assert config_mismatch({"a": 1, "b": 2}, {"a": 1, "b": 2}) is None
    assert config_mismatch({"a": 1}, {"a": 2}) == ("a", 1, 2)
    # Keys on one side only do not invalidate the comparison.
    assert config_mismatch({"a": 1}, {"a": 1, "new": 9}) is None


def test_entry_appears_and_vanishes(operator_doc):
    fresh = copy.deepcopy(operator_doc)
    gone = fresh["rows"].pop(0)
    fresh["rows"].append(dict(gone, matrix="brand_new"))
    res = compare_docs("BENCH_operator.json", operator_doc, fresh)
    notes = [e["note"] for e in res["entries"] if "note" in e]
    assert "missing in fresh run" in notes
    assert "new entry (no baseline)" in notes
    assert res["status"] == "ok"  # informational, not a verdict


def test_cli_end_to_end(tmp_path, operator_doc, capsys):
    fresh = tmp_path / "fresh"
    fresh.mkdir()
    for name in ADAPTERS:
        src = RESULTS / name
        if src.exists():
            (fresh / name).write_text(src.read_text())
    assert main(["--fresh", str(fresh), "--baseline", str(RESULTS)]) == 0
    (fresh / "BENCH_operator.json").write_text(
        json.dumps(_slowed(operator_doc))
    )
    assert main(["--fresh", str(fresh), "--baseline", str(RESULTS)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION DETECTED" in out


def test_cli_rejects_bad_tolerance(tmp_path):
    with pytest.raises(SystemExit):
        main(["--fresh", str(tmp_path), "--tolerance", "0.9"])
