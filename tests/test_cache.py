"""Unit tests for the reuse-window cache traffic estimator."""

import numpy as np

from repro.machine import estimate_x_misses, reuse_window_lines, x_traffic_bytes
from repro.machine.platforms import CACHE_LINE_BYTES


def test_window_lines():
    assert reuse_window_lines(0) == 1
    assert reuse_window_lines(64 * 100, x_share=1.0) == 100
    assert reuse_window_lines(64 * 100, x_share=0.5) == 50


def test_sequential_stream_one_miss_per_line():
    cols = np.arange(800)  # 100 cache lines of 8 doubles
    misses = estimate_x_misses(cols, window_lines=1000)
    assert misses == 100


def test_repeated_access_hits_in_window():
    cols = np.tile(np.arange(8), 50)  # one line, touched repeatedly
    assert estimate_x_misses(cols, window_lines=10) == 1


def test_repeated_access_misses_outside_window():
    # Alternate between two far-apart lines with a tiny window.
    cols = np.empty(100, dtype=np.int64)
    cols[0::2] = 0
    cols[1::2] = 8000
    misses = estimate_x_misses(cols, window_lines=0)
    assert misses == 100  # every access evicted before reuse


def test_banded_beats_scattered(rng):
    n = 20000
    banded = (np.arange(5000) % 512).astype(np.int64)
    scattered = rng.integers(0, n, size=5000)
    window = reuse_window_lines(32 * 1024)  # 32 KiB cache
    assert estimate_x_misses(banded, window) < estimate_x_misses(
        scattered, window
    )


def test_misses_monotone_in_cache_size(rng):
    cols = rng.integers(0, 100000, size=20000)
    m_small = estimate_x_misses(cols, window_lines=64)
    m_big = estimate_x_misses(cols, window_lines=8192)
    assert m_big <= m_small


def test_empty_stream():
    assert estimate_x_misses(np.zeros(0, dtype=np.int64), 10) == 0
    assert x_traffic_bytes(np.zeros(0, dtype=np.int64), 1 << 20) == 0


def test_traffic_bytes_is_misses_times_line():
    cols = np.arange(80)
    window = reuse_window_lines(1 << 20, x_share=1.0)
    assert x_traffic_bytes(cols, 1 << 20, x_share=1.0) == (
        estimate_x_misses(cols, window) * CACHE_LINE_BYTES
    )


def test_consecutive_duplicates_compressed():
    cols = np.repeat(np.arange(0, 80, 8), 100)  # long dwell per line
    assert estimate_x_misses(cols, window_lines=2) == 10


def test_single_access():
    assert estimate_x_misses(np.array([42]), window_lines=1) == 1
