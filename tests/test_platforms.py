"""Unit tests for the platform models (paper Table II)."""

import pytest

from repro.machine import DUNNINGTON, GAINESTOWN, PLATFORMS


def test_table2_dunnington():
    p = DUNNINGTON
    assert p.n_cores == 24 and p.n_threads == 24
    assert p.clock_ghz == 2.66
    assert p.total_bw_gbps == 5.4  # shared FSB
    assert p.llc_total_bytes == 4 * 16 * 1024 * 1024


def test_table2_gainestown():
    p = GAINESTOWN
    assert p.n_cores == 8 and p.n_threads == 16
    assert p.clock_ghz == 3.20
    assert p.total_bw_gbps == pytest.approx(2 * 15.5)
    assert p.llc_total_bytes == 2 * 8 * 1024 * 1024


def test_registry():
    assert PLATFORMS["dunnington"] is DUNNINGTON
    assert PLATFORMS["gainestown"] is GAINESTOWN


def test_thread_placement_round_robin():
    assert DUNNINGTON.thread_placement(4) == [1, 1, 1, 1]
    assert DUNNINGTON.thread_placement(6) == [2, 2, 1, 1]
    assert GAINESTOWN.thread_placement(3) == [2, 1]


def test_thread_placement_bounds():
    with pytest.raises(ValueError):
        DUNNINGTON.thread_placement(0)
    with pytest.raises(ValueError):
        DUNNINGTON.thread_placement(25)
    with pytest.raises(ValueError):
        GAINESTOWN.thread_placement(17)


def test_cores_used_saturates_with_smt():
    # 16 threads on Gainestown = 8 physical cores.
    assert GAINESTOWN.cores_used(16) == 8
    assert GAINESTOWN.cores_used(8) == 8
    assert GAINESTOWN.cores_used(2) == 2
    assert DUNNINGTON.cores_used(24) == 24


def test_bandwidth_monotone_in_threads():
    for platform in (DUNNINGTON, GAINESTOWN):
        prev = 0.0
        for p in range(1, platform.n_threads + 1):
            bw = platform.bandwidth_gbps(p)
            assert bw >= prev - 1e-12
            prev = bw


def test_dunnington_bandwidth_saturates_at_fsb():
    assert DUNNINGTON.bandwidth_gbps(1) == pytest.approx(
        DUNNINGTON.per_thread_bw_gbps
    )
    assert DUNNINGTON.bandwidth_gbps(24) == pytest.approx(5.4)
    assert DUNNINGTON.bandwidth_gbps(12) == pytest.approx(5.4)


def test_gainestown_numa_scales_with_sockets():
    one = GAINESTOWN.bandwidth_gbps(1)
    two = GAINESTOWN.bandwidth_gbps(2)  # round-robin: one per socket
    assert two == pytest.approx(2 * one)
    assert GAINESTOWN.bandwidth_gbps(16) == pytest.approx(31.0)


def test_llc_available_grows_with_sockets():
    assert GAINESTOWN.llc_bytes_available(1) == 8 * 1024 * 1024
    assert GAINESTOWN.llc_bytes_available(2) == 16 * 1024 * 1024
    assert DUNNINGTON.llc_bytes_available(4) == 64 * 1024 * 1024
