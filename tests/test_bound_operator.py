"""Bound operators (``driver.bind``): conformance, workspace reuse,
allocation discipline and cache bounding.

The bound layer must be observationally identical to the plain drivers
on the whole conformance battery, while actually delivering what it
promises: a warm operator performs no new retained large-array
allocations per application, returns the same persistent workspace
every call, and releases the format's lazy caches on ``close()``.
"""

import gc
import tracemalloc

import numpy as np
import pytest

from repro.formats.base import FLAT_CACHE_MAX, RowScatter
from repro.formats.csx.matrix import CSXMatrix
from repro.parallel import (
    BoundSpMV,
    BoundSymmetricSpMV,
    ParallelSpMV,
    ParallelSymmetricSpMV,
)
from repro.solvers import (
    block_conjugate_gradient,
    conjugate_gradient,
    preconditioned_conjugate_gradient,
)
from repro.solvers.pcg import jacobi_preconditioner

from tests.conformance import (
    CASES,
    PARTITION_LAYOUTS,
    REDUCTIONS,
    SYMMETRIC_FORMATS,
    UNSYMMETRIC_DRIVER_FORMATS,
    build_symmetric,
    build_unsymmetric,
    reference_product,
    rhs_block,
    skip_unless_supported,
)

CASE_NAMES = sorted(CASES)
KS = (None, 3)


def _sym_driver(case, fmt, reduction, layout="thirds"):
    matrix, parts = build_symmetric(case, fmt, layout)
    return ParallelSymmetricSpMV(matrix, parts, reduction)


def _unsym_driver(case, fmt, layout="thirds"):
    matrix, parts = build_unsymmetric(case, fmt, layout)
    return ParallelSpMV(matrix, parts)


# ---------------------------------------------------------------------
# Conformance: bound == unbound == dense, across the whole battery
# ---------------------------------------------------------------------
@pytest.mark.parametrize("k", KS, ids=["spmv", "spmm_k3"])
@pytest.mark.parametrize("reduction", REDUCTIONS)
@pytest.mark.parametrize("fmt", SYMMETRIC_FORMATS)
@pytest.mark.parametrize("case", CASE_NAMES)
def test_bound_symmetric_matches_unbound(case, fmt, reduction, k):
    skip_unless_supported(fmt, reduction)
    driver = _sym_driver(case, fmt, reduction)
    x = rhs_block(driver.matrix.n_cols, k)
    with driver.bind(k) as bound:
        assert isinstance(bound, BoundSymmetricSpMV)
        got = bound(x)
        assert np.allclose(got, driver(x))
        assert np.allclose(got, reference_product(case, x))
        # Second application through the same plan stays correct.
        x2 = rhs_block(driver.matrix.n_cols, k, seed=5)
        assert np.allclose(bound(x2), reference_product(case, x2))


@pytest.mark.parametrize("k", KS, ids=["spmv", "spmm_k3"])
@pytest.mark.parametrize("fmt", UNSYMMETRIC_DRIVER_FORMATS)
@pytest.mark.parametrize("case", CASE_NAMES)
def test_bound_unsymmetric_matches_unbound(case, fmt, k):
    driver = _unsym_driver(case, fmt)
    x = rhs_block(driver.matrix.n_cols, k)
    with driver.bind(k) as bound:
        assert isinstance(bound, BoundSpMV)
        assert np.allclose(bound(x), driver(x))
        assert np.allclose(bound(x), reference_product(case, x))


@pytest.mark.parametrize("layout", PARTITION_LAYOUTS)
def test_bound_layouts(layout):
    driver = _sym_driver("random", "sss", "indexed", layout)
    x = rhs_block(driver.matrix.n_cols, None)
    with driver.bind() as bound:
        assert np.allclose(bound(x), reference_product("random", x))


# ---------------------------------------------------------------------
# Workspace semantics
# ---------------------------------------------------------------------
def test_workspace_identity_and_out():
    driver = _sym_driver("random", "sss", "indexed")
    bound = driver.bind()
    x = rhs_block(driver.matrix.n_cols, None)
    y1 = bound(x)
    y2 = bound(x)
    assert y1 is y2  # the persistent workspace, not a fresh array
    out = np.empty_like(y1)
    y3 = bound(x, out=out)
    assert y3 is out
    assert np.allclose(out, reference_product("random", x))
    bound.close()


def test_workspace_alias_input():
    # y = op(op(x)): feeding the workspace back in must not zero the
    # input mid-computation.
    driver = _sym_driver("banded", "sss", "effective")
    dense = CASES["banded"].dense
    x = rhs_block(driver.matrix.n_cols, None)
    with driver.bind() as bound:
        y = bound(bound(x))
        assert np.allclose(y, dense @ (dense @ x))


def test_bound_rejects_wrong_shapes():
    driver = _sym_driver("random", "sss", "naive")
    n = driver.matrix.n_cols
    with driver.bind() as bound:
        with pytest.raises(ValueError):
            bound(np.zeros((n, 2)))  # 2-D into a 1-D binding
        with pytest.raises(ValueError):
            bound(np.zeros(n + 1))
    with driver.bind(2) as bound2:
        with pytest.raises(ValueError):
            bound2(np.zeros(n))  # 1-D into a k=2 binding
        with pytest.raises(ValueError):
            bound2(np.zeros((n, 3)))
    with pytest.raises(ValueError):
        driver.bind(0)


def test_bind_idempotent_and_rebind():
    driver = _sym_driver("random", "sss", "indexed")
    bound = driver.bind(3)
    assert bound.bind(3) is bound
    rebound = bound.bind(None)
    assert rebound is not bound
    assert rebound.k is None
    x = rhs_block(driver.matrix.n_cols, None)
    assert np.allclose(rebound(x), reference_product("random", x))
    bound.close()
    rebound.close()
    # A closed operator re-binds afresh even for the same signature.
    fresh = bound.bind(3)
    assert fresh is not bound
    fresh.close()


def test_close_releases_and_rejects():
    driver = _sym_driver("random", "sss", "indexed")
    sss = driver.matrix
    bound = driver.bind(2)
    X = rhs_block(sss.n_cols, 2)
    bound(X)
    assert sss._spmm_part_cache  # populated by the bound passes
    bound.close()
    assert not sss._spmm_part_cache  # clear_caches() wired through
    assert sss._spmm_scatter is None
    assert bound.closed
    with pytest.raises(RuntimeError):
        bound(X)
    bound.close()  # idempotent


# ---------------------------------------------------------------------
# Allocation discipline: warm operator retains nothing new per call
# ---------------------------------------------------------------------
def test_warm_bound_operator_retains_no_new_allocations():
    driver = _sym_driver("banded", "sss", "indexed")
    x = rhs_block(driver.matrix.n_cols, None)
    bound = driver.bind()
    for _ in range(3):  # warm every lazy path
        bound(x)
    gc.collect()
    tracemalloc.start()
    try:
        snap0 = tracemalloc.take_snapshot()
        for _ in range(10):
            bound(x)
        gc.collect()
        snap1 = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    # No retained block of even a kilobyte may appear per warm call:
    # workspaces persist, caches are warm, temporaries are released.
    growth = sum(
        d.size_diff
        for d in snap1.compare_to(snap0, "filename")
        if d.size_diff > 1024
    )
    assert growth < 10 * 1024, f"warm operator retained {growth} bytes"
    bound.close()


# ---------------------------------------------------------------------
# Cache bounding
# ---------------------------------------------------------------------
def test_row_scatter_flat_cache_bounded():
    sc = RowScatter(np.array([3, 5, 3, 9]))
    for k in range(1, 3 * FLAT_CACHE_MAX):
        sc.compile(k)
    assert len(sc._flat) <= FLAT_CACHE_MAX
    # Most-recent k values survive; the scatter still works for any k.
    y = np.zeros((10, 2))
    sc.add(y, np.ones((4, 2)))
    assert y[3, 0] == 2.0 and y[5, 1] == 1.0 and y[9, 0] == 1.0
    sc.clear()
    assert not sc._flat


def test_tsplit_cache_bounded():
    from repro.matrices.generators import grid_laplacian_2d

    coo = grid_laplacian_2d(10, 10)  # n = 100 > the cache cap
    matrix = CSXMatrix(coo)
    plan = matrix.partitions[0].plan
    n = matrix.n_rows
    x = rhs_block(n, None)
    expected = coo.to_dense().T @ x
    # Hammer the transposed-split path with more distinct boundaries
    # than the cache may hold; eviction must not affect results.
    for boundary in range(n):
        y_direct = np.zeros(n)
        y_local = np.zeros(n)
        plan.execute_transposed_split(x, y_direct, y_local, boundary)
        assert np.allclose(y_direct + y_local, expected)
    assert n > plan._tsplit_cache_max
    assert len(plan._tsplit_cache) <= plan._tsplit_cache_max


# ---------------------------------------------------------------------
# Solver integration: auto-binding keeps solutions identical
# ---------------------------------------------------------------------
def _spd_system(n=40, seed=3):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    dense = a @ a.T + n * np.eye(n)
    from repro.formats import COOMatrix, SSSMatrix

    coo = COOMatrix.from_dense(dense)
    sss = SSSMatrix.from_coo(coo)
    parts = [(0, n // 3), (n // 3, n // 2), (n // 2, n)]
    return dense, sss, parts, rng


def test_cg_auto_binds_parallel_driver():
    dense, sss, parts, rng = _spd_system()
    driver = ParallelSymmetricSpMV(sss, parts, "indexed")
    b = rng.standard_normal(dense.shape[0])
    res = conjugate_gradient(driver, b, tol=1e-10)
    assert res.converged
    assert np.allclose(dense @ res.x, b, atol=1e-7)
    # The driver itself is untouched (binding wrapped, not mutated).
    assert np.allclose(driver(b), dense @ b)


def test_pcg_auto_binds_parallel_driver():
    dense, sss, parts, rng = _spd_system(seed=4)
    driver = ParallelSymmetricSpMV(sss, parts, "effective")
    b = rng.standard_normal(dense.shape[0])
    res = preconditioned_conjugate_gradient(
        driver, b, jacobi_preconditioner(np.diag(dense)), tol=1e-10
    )
    assert res.converged
    assert np.allclose(dense @ res.x, b, atol=1e-7)


def test_block_cg_auto_binds_parallel_driver():
    dense, sss, parts, rng = _spd_system(seed=5)
    driver = ParallelSymmetricSpMV(sss, parts, "indexed")
    B = rng.standard_normal((dense.shape[0], 3))
    res = block_conjugate_gradient(driver, B, tol=1e-10)
    assert res.all_converged
    assert np.allclose(dense @ res.X, B, atol=1e-7)


def test_solver_accepts_already_bound_operator():
    dense, sss, parts, rng = _spd_system(seed=6)
    driver = ParallelSymmetricSpMV(sss, parts, "naive")
    b = rng.standard_normal(dense.shape[0])
    with driver.bind() as bound:
        res = conjugate_gradient(bound, b, tol=1e-10)
        assert res.converged
        assert np.allclose(dense @ res.x, b, atol=1e-7)
