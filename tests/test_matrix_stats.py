"""Unit tests for the matrix-statistics fingerprint."""

import numpy as np
import pytest

from repro.analysis import compute_matrix_stats
from repro.formats import COOMatrix
from repro.matrices import (
    banded_random,
    dense_clustered,
    grid_laplacian_2d,
    permute_random,
)


def test_basic_fields(sym_coo_small):
    s = compute_matrix_stats(sym_coo_small)
    assert s.n_rows == sym_coo_small.n_rows
    assert s.nnz == sym_coo_small.nnz
    assert s.symmetric
    assert s.diag_nnz == sym_coo_small.n_rows  # full SPD diagonal
    assert 0 < s.density < 1


def test_nnz_distribution(sym_dense_small):
    coo = COOMatrix.from_dense(sym_dense_small)
    s = compute_matrix_stats(coo)
    counts = (sym_dense_small != 0).sum(axis=1)
    assert s.nnz_per_row_mean == pytest.approx(counts.mean())
    assert s.nnz_per_row_max == counts.max()
    assert s.nnz_per_row_std == pytest.approx(counts.std())


def test_unit_stride_high_for_clustered(rng):
    clustered = dense_clustered(300, 40.0, 80, 8, rng)
    scattered = banded_random(300, 8.0, 290, np.random.default_rng(1))
    s_c = compute_matrix_stats(clustered)
    s_s = compute_matrix_stats(scattered)
    assert s_c.unit_stride_fraction > 0.5
    assert s_c.unit_stride_fraction > 3 * s_s.unit_stride_fraction


def test_miss_rate_rises_with_scrambling(rng):
    base = grid_laplacian_2d(60, 60)
    scrambled = permute_random(base, rng)
    assert (
        compute_matrix_stats(scrambled).x_miss_rate
        >= compute_matrix_stats(base).x_miss_rate
    )


def test_sss_compression_near_half(sym_coo_medium):
    s = compute_matrix_stats(sym_coo_medium)
    assert 0.40 < s.sss_compression < 0.55


def test_unsymmetric_matrix():
    coo = COOMatrix((3, 3), [0, 1], [1, 2], [1.0, 2.0])
    s = compute_matrix_stats(coo)
    assert not s.symmetric
    assert s.sss_compression == 0.0
    assert s.diag_nnz == 0


def test_rectangular_matrix(rng):
    dense = rng.random((4, 9))
    dense[dense < 0.5] = 0.0
    s = compute_matrix_stats(COOMatrix.from_dense(dense))
    assert s.n_cols == 9
    assert not s.symmetric
    assert s.bandwidth == 0  # bandwidth undefined off-square


def test_empty_matrix():
    s = compute_matrix_stats(COOMatrix.empty((5, 5)))
    assert s.nnz == 0
    assert s.x_miss_rate == 0.0
    assert s.nnz_per_row_max == 0
