"""Property-style round-trip tests for the format constructors.

``test_properties.py`` checks round trips from *clean* dense matrices.
This module attacks the constructors from the dirty end: seeded random
COO triplets with duplicate coordinates, unsorted entry order and
explicit zeros, pushed through ``from_coo -> to_coo/to_dense`` for
every format. The dense scatter-accumulation is the ground truth.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import (
    BCSRMatrix,
    COOMatrix,
    CSBMatrix,
    CSBSymMatrix,
    CSRMatrix,
    CSXMatrix,
    CSXSymMatrix,
    SSSMatrix,
)


@st.composite
def raw_triplets(draw, max_n=16, max_entries=60):
    """Unsorted (n, rows, cols, vals) with likely duplicate coords."""
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, max_entries))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, m)
    cols = rng.integers(0, n, m)
    vals = rng.uniform(-2.0, 2.0, m)
    return n, rows, cols, vals


def _accumulated_dense(n, rows, cols, vals):
    dense = np.zeros((n, n))
    np.add.at(dense, (rows, cols), vals)
    return dense


def _symmetrized(n, rows, cols, vals):
    """Mirror the triplets across the diagonal: an exactly symmetric
    matrix delivered as raw duplicate-laden COO input."""
    rows2 = np.concatenate([rows, cols])
    cols2 = np.concatenate([cols, rows])
    vals2 = np.concatenate([vals, vals])
    dense = _accumulated_dense(n, rows, cols, vals)
    return rows2, cols2, vals2, dense + dense.T


@given(raw_triplets())
@settings(max_examples=50, deadline=None)
def test_coo_canonicalizes_duplicates(args):
    n, rows, cols, vals = args
    coo = COOMatrix((n, n), rows, cols, vals)
    assert np.allclose(coo.to_dense(), _accumulated_dense(n, rows, cols, vals))
    # Canonical form: row-major sorted, no duplicate coordinates.
    keys = coo.rows.astype(np.int64) * n + coo.cols
    assert np.all(np.diff(keys) > 0) if keys.size > 1 else True


@given(raw_triplets())
@settings(max_examples=50, deadline=None)
def test_coo_entry_order_is_irrelevant(args):
    n, rows, cols, vals = args
    coo = COOMatrix((n, n), rows, cols, vals)
    perm = np.random.default_rng(0).permutation(rows.size)
    shuffled = COOMatrix((n, n), rows[perm], cols[perm], vals[perm])
    assert np.array_equal(coo.rows, shuffled.rows)
    assert np.array_equal(coo.cols, shuffled.cols)
    assert np.allclose(coo.vals, shuffled.vals)


@given(raw_triplets())
@settings(max_examples=40, deadline=None)
def test_unsymmetric_formats_roundtrip_dirty_coo(args):
    n, rows, cols, vals = args
    coo = COOMatrix((n, n), rows, cols, vals)
    dense = _accumulated_dense(n, rows, cols, vals)
    for fmt in (
        CSRMatrix.from_coo(coo),
        BCSRMatrix(coo, (2, 2)),
        CSBMatrix(coo, beta=4),
        CSXMatrix(coo),
    ):
        assert np.allclose(fmt.to_dense(), dense), fmt.format_name
        assert np.allclose(fmt.to_coo().to_dense(), dense), fmt.format_name


@given(raw_triplets())
@settings(max_examples=40, deadline=None)
def test_symmetric_formats_roundtrip_dirty_coo(args):
    n, rows, cols, vals = args
    rows2, cols2, vals2, dense = _symmetrized(n, rows, cols, vals)
    coo = COOMatrix((n, n), rows2, cols2, vals2)
    for fmt in (
        SSSMatrix.from_coo(coo),
        CSXSymMatrix(coo),
        CSBSymMatrix(coo, beta=4),
    ):
        assert np.allclose(fmt.to_dense(), dense), fmt.format_name
        assert np.allclose(fmt.to_coo().to_dense(), dense), fmt.format_name


@given(raw_triplets())
@settings(max_examples=40, deadline=None)
def test_spmv_spmm_agree_on_dirty_input(args):
    n, rows, cols, vals = args
    coo = COOMatrix((n, n), rows, cols, vals)
    dense = _accumulated_dense(n, rows, cols, vals)
    rng = np.random.default_rng(5)
    X = rng.standard_normal((n, 3))
    for fmt in (coo, CSRMatrix.from_coo(coo), CSXMatrix(coo)):
        assert np.allclose(fmt.spmv(X[:, 0].copy()), dense @ X[:, 0])
        assert np.allclose(fmt.spmm(X), dense @ X), fmt.format_name


@given(raw_triplets(max_entries=30))
@settings(max_examples=30, deadline=None)
def test_explicit_zero_handling(args):
    n, rows, cols, vals = args
    vals = vals.copy()
    vals[::2] = 0.0  # plant explicit zeros
    kept = COOMatrix((n, n), rows, cols, vals)
    dropped = COOMatrix((n, n), rows, cols, vals, drop_zeros=True)
    assert np.allclose(kept.to_dense(), dropped.to_dense())
    assert dropped.nnz <= kept.nnz
    assert np.all(dropped.vals != 0.0)
