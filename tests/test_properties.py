"""Property-based tests on the core invariants (hypothesis).

The invariants that hold for *any* symmetric matrix and *any* thread
partitioning:

* every storage format computes the same SpM×V as the dense product;
* format round trips through COO are exact;
* all three reduction methods agree with the serial kernel;
* the indexed reduction's pairs enumerate exactly the local non-zeros.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.formats import (
    BCSRMatrix,
    COOMatrix,
    CSBMatrix,
    CSBSymMatrix,
    CSRMatrix,
    CSXMatrix,
    CSXSymMatrix,
    SSSMatrix,
)
from repro.parallel import (
    IndexedReduction,
    ParallelSymmetricSpMV,
    partition_nnz_balanced,
    validate_partitions,
)


@st.composite
def symmetric_dense(draw, max_n=24):
    n = draw(st.integers(2, max_n))
    density = draw(st.floats(0.05, 0.5))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    upper = np.triu(
        (rng.random((n, n)) < density)
        * rng.uniform(-2.0, 2.0, (n, n)),
        k=1,
    )
    dense = upper + upper.T
    diag = rng.uniform(0.5, 3.0, n) + np.abs(dense).sum(axis=1)
    np.fill_diagonal(dense, diag)
    return dense


@st.composite
def dense_with_partitions(draw, max_n=24, max_p=6):
    dense = draw(symmetric_dense(max_n))
    n = dense.shape[0]
    p = draw(st.integers(1, max_p))
    # Arbitrary (possibly unbalanced, possibly empty) partitioning.
    cuts = draw(
        st.lists(st.integers(0, n), min_size=p - 1, max_size=p - 1)
    )
    bounds = [0] + sorted(cuts) + [n]
    parts = [(bounds[i], bounds[i + 1]) for i in range(p)]
    return dense, parts


@given(symmetric_dense())
@settings(max_examples=40, deadline=None)
def test_all_formats_agree_with_dense(dense):
    coo = COOMatrix.from_dense(dense)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(dense.shape[0])
    expected = dense @ x
    for fmt in (
        CSRMatrix.from_coo(coo),
        SSSMatrix.from_coo(coo),
        CSXMatrix(coo),
        CSXSymMatrix(coo),
        BCSRMatrix(coo, (2, 2)),
        BCSRMatrix(coo, autotune=True),
        CSBMatrix(coo, beta=8),
        CSBSymMatrix(coo, beta=8),
    ):
        assert np.allclose(fmt.spmv(x), expected), fmt.format_name


@given(symmetric_dense())
@settings(max_examples=40, deadline=None)
def test_coo_roundtrips_are_exact(dense):
    coo = COOMatrix.from_dense(dense)
    for fmt in (
        CSRMatrix.from_coo(coo),
        SSSMatrix.from_coo(coo),
        CSXMatrix(coo),
        CSXSymMatrix(coo),
        BCSRMatrix(coo, (3, 3)),
        CSBMatrix(coo, beta=8),
        CSBSymMatrix(coo, beta=8),
    ):
        assert np.array_equal(fmt.to_coo().to_dense(), dense), (
            fmt.format_name
        )


@given(dense_with_partitions())
@settings(max_examples=40, deadline=None)
def test_reduction_methods_agree_for_any_partitioning(args):
    dense, parts = args
    coo = COOMatrix.from_dense(dense)
    sss = SSSMatrix.from_coo(coo)
    validate_partitions(parts, coo.n_rows)
    rng = np.random.default_rng(1)
    x = rng.standard_normal(coo.n_cols)
    expected = dense @ x
    for method in ("naive", "effective", "indexed"):
        y = ParallelSymmetricSpMV(sss, parts, method)(x)
        assert np.allclose(y, expected), (method, parts)


@given(dense_with_partitions())
@settings(max_examples=30, deadline=None)
def test_csx_sym_partitioned_matches_dense(args):
    dense, parts = args
    coo = COOMatrix.from_dense(dense)
    csxs = CSXSymMatrix(coo, partitions=parts)
    rng = np.random.default_rng(2)
    x = rng.standard_normal(coo.n_cols)
    y = ParallelSymmetricSpMV(csxs, parts, "indexed")(x)
    assert np.allclose(y, dense @ x)


@given(dense_with_partitions())
@settings(max_examples=30, deadline=None)
def test_index_pairs_enumerate_local_nonzeros_exactly(args):
    dense, parts = args
    coo = COOMatrix.from_dense(dense)
    sss = SSSMatrix.from_coo(coo)
    red = IndexedReduction(sss, parts)
    # Positive x prevents cancellation: writes are visible as non-zeros.
    x = np.ones(coo.n_cols)
    n = coo.n_rows
    expected_pairs = 0
    for start, end in parts:
        direct = np.zeros(n)
        local = np.zeros(n)
        sss.spmv_partition(x, direct, local, start, end)
        expected_pairs += np.count_nonzero(local)
    assert red.n_pairs == expected_pairs


@given(symmetric_dense(), st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_nnz_balanced_partition_always_valid(dense, p):
    coo = COOMatrix.from_dense(dense)
    parts = partition_nnz_balanced(coo.row_counts(), p)
    validate_partitions(parts, coo.n_rows)


@given(symmetric_dense())
@settings(max_examples=30, deadline=None)
def test_symmetric_sizes_ordered(dense):
    """CSX-Sym ≤ SSS < CSR in representation size (the compression
    chain the whole paper builds on) for matrices with enough entries."""
    coo = COOMatrix.from_dense(dense)
    csr = CSRMatrix.from_coo(coo)
    sss = SSSMatrix.from_coo(coo)
    csxs = CSXSymMatrix(coo)
    assert sss.size_bytes() <= csr.size_bytes() + 4
    # ctl can cost slightly more than SSS indexing on tiny random
    # matrices; allow a small per-unit slack.
    assert csxs.size_bytes() <= sss.size_bytes() + 2 * len(
        [u for p_ in csxs.partitions for u in p_.units]
    )


@given(symmetric_dense(max_n=16))
@settings(max_examples=25, deadline=None)
def test_spd_systems_solvable_by_cg(dense):
    from repro.solvers import conjugate_gradient

    coo = COOMatrix.from_dense(dense)
    csr = CSRMatrix.from_coo(coo)
    rng = np.random.default_rng(3)
    x_true = rng.standard_normal(coo.n_rows)
    b = dense @ x_true
    res = conjugate_gradient(csr.spmv, b, tol=1e-12, max_iter=2000)
    assert res.converged
    assert np.allclose(res.x, x_true, atol=1e-5)
