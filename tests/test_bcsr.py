"""Unit tests for the BCSR comparator format."""

import numpy as np
import pytest

from repro.formats import BCSRMatrix, COOMatrix
from repro.formats.bcsr import autotune_block_shape, bcsr_fill_ratio
from repro.matrices import block_structural


@pytest.fixture(scope="module")
def block_coo():
    rng = np.random.default_rng(5)
    return block_structural(
        80, dof=3, nnz_per_row=24.0, band_nodes=10, rng=rng
    )


def test_spmv_matches_dense(sym_dense_medium, rng):
    coo = COOMatrix.from_dense(sym_dense_medium)
    for shape in ((1, 1), (2, 2), (3, 3), (2, 3), (4, 4)):
        bcsr = BCSRMatrix(coo, shape)
        x = rng.standard_normal(coo.n_cols)
        assert np.allclose(bcsr.spmv(x), sym_dense_medium @ x), shape


def test_spmv_ragged_edge(rng):
    dense = rng.random((7, 7))
    dense[dense < 0.5] = 0.0
    coo = COOMatrix.from_dense(dense)
    bcsr = BCSRMatrix(coo, (3, 3))  # 7 not divisible by 3
    x = rng.standard_normal(7)
    assert np.allclose(bcsr.spmv(x), dense @ x)


def test_unit_blocks_equal_csr_nnz(sym_coo_small):
    bcsr = BCSRMatrix(sym_coo_small, (1, 1))
    assert bcsr.stored_entries == sym_coo_small.nnz
    assert bcsr.fill_ratio == 1.0


def test_fill_ratio_grows_with_blocks(sym_coo_small):
    r1 = BCSRMatrix(sym_coo_small, (1, 1)).fill_ratio
    r4 = BCSRMatrix(sym_coo_small, (4, 4)).fill_ratio
    assert r1 <= r4
    assert r4 > 1.0  # scattered fixture must have fill-in


def test_block_structural_matrix_has_low_fill(block_coo):
    """3-dof structural matrices tile perfectly with 3x3 blocks."""
    bcsr = BCSRMatrix(block_coo, (3, 3))
    assert bcsr.fill_ratio < 1.2


def test_autotune_picks_3x3_for_3dof(block_coo):
    shape = autotune_block_shape(block_coo)
    assert shape == (3, 3)
    auto = BCSRMatrix(block_coo, autotune=True)
    assert auto.block_shape == (3, 3)


def test_autotune_picks_1x1_for_scattered(rng):
    dense = np.zeros((60, 60))
    idx = rng.choice(3600, 100, replace=False)
    dense[idx // 60, idx % 60] = 1.0
    coo = COOMatrix.from_dense(dense)
    assert autotune_block_shape(coo) == (1, 1)


def test_autotune_empty_candidates_rejected(sym_coo_small):
    with pytest.raises(ValueError):
        autotune_block_shape(sym_coo_small, candidates=[])


def test_size_accounts_fill(block_coo):
    bcsr = BCSRMatrix(block_coo, (3, 3))
    expected = (
        8 * bcsr.stored_entries
        + 4 * bcsr.n_blocks
        + 4 * (bcsr.n_brows + 1)
    )
    assert bcsr.size_bytes() == expected


def test_fill_ratio_helper_matches(block_coo):
    bcsr = BCSRMatrix(block_coo, (2, 2))
    assert bcsr_fill_ratio(block_coo, (2, 2)) == pytest.approx(
        bcsr.fill_ratio
    )


def test_to_coo_roundtrip(block_coo):
    bcsr = BCSRMatrix(block_coo, (3, 3))
    assert np.allclose(bcsr.to_coo().to_dense(), block_coo.to_dense())


def test_invalid_block_shape(sym_coo_small):
    with pytest.raises(ValueError):
        BCSRMatrix(sym_coo_small, (0, 2))


def test_empty_matrix():
    bcsr = BCSRMatrix(COOMatrix.empty((5, 5)), (2, 2))
    assert bcsr.n_blocks == 0
    assert np.array_equal(bcsr.spmv(np.ones(5)), np.zeros(5))
