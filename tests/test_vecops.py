"""Unit tests for the instrumented vector operations."""

import numpy as np
import pytest

from repro.solvers import OpCounter, VectorOps


@pytest.fixture()
def ops():
    return VectorOps(OpCounter())


def test_dot(ops, rng):
    a, b = rng.random(100), rng.random(100)
    assert ops.dot(a, b) == pytest.approx(float(a @ b))
    assert ops.counter.flops == 200
    assert ops.counter.bytes == 8 * 200


def test_dot_aliased_counts_one_read(ops, rng):
    a = rng.random(50)
    ops.dot(a, a)
    assert ops.counter.bytes == 8 * 50


def test_norm2(ops, rng):
    a = rng.random(64)
    assert ops.norm2(a) == pytest.approx(float(np.linalg.norm(a)))


def test_axpy_in_place(ops, rng):
    x, y = rng.random(30), rng.random(30)
    expected = y + 2.5 * x
    ops.axpy(2.5, x, y)
    assert np.allclose(y, expected)
    assert ops.counter.flops == 60
    assert ops.counter.bytes == 8 * 90


def test_xpay_in_place(ops, rng):
    x, y = rng.random(30), rng.random(30)
    expected = x + 0.5 * y
    ops.xpay(x, 0.5, y)
    assert np.allclose(y, expected)


def test_copy(ops, rng):
    src = rng.random(20)
    dst = np.zeros(20)
    ops.copy(src, dst)
    assert np.array_equal(dst, src)
    assert ops.counter.flops == 0


def test_scale(ops, rng):
    x = rng.random(25)
    expected = 3.0 * x
    ops.scale(3.0, x)
    assert np.allclose(x, expected)


def test_counter_reset(ops, rng):
    ops.dot(rng.random(10), rng.random(10))
    assert ops.counter.n_ops == 1
    ops.counter.reset()
    assert ops.counter.flops == 0 and ops.counter.n_ops == 0


def test_default_counter_created():
    v = VectorOps()
    v.dot(np.ones(4), np.ones(4))
    assert v.counter.n_ops == 1
