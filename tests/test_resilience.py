"""Fault-injection chaos executor and failure containment.

Covers the resilience taxonomy end to end:

* :class:`ChaosPlan` — deterministic fault derivation, validation,
  explicit overrides;
* ``Executor`` containment — typed :class:`BatchExecutionError`
  aggregation, sibling await/cancel, ``fallback="serial"`` degradation;
* bound-operator poisoning — auto-recovery vs ``on_poison="raise"``,
  full-extent workspace re-zeroing, :class:`OperatorClosedError`;
* the containment property itself, as a hypothesis sweep over fault
  plans: every application either raises a typed resilience error or
  returns output bit-identical to the serial execution.
"""

import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import reset_warning_counts, warning_counts
from repro.parallel import (
    Executor,
    ParallelSpMV,
    ParallelSymmetricSpMV,
    live_segments,
    shared_memory_available,
)
from repro.resilience import (
    BatchExecutionError,
    ChaosInjectedError,
    ChaosPlan,
    ExecutionError,
    FaultSpec,
    OperatorClosedError,
    PoisonedOperatorError,
    WorkerCrashError,
)

from tests.conformance import (
    build_symmetric,
    build_unsymmetric,
    reference_product,
    rhs_block,
)

CONTAINED = (BatchExecutionError, PoisonedOperatorError, ChaosInjectedError)


# ----------------------------------------------------------------------
# ChaosPlan: deterministic derivation and validation
# ----------------------------------------------------------------------
def test_plan_is_deterministic():
    a = ChaosPlan(42, p_raise=0.3, p_delay=0.3)
    b = ChaosPlan(42, p_raise=0.3, p_delay=0.3)
    for batch in range(5):
        for tid in range(8):
            assert a.fault_for(batch, tid) == b.fault_for(batch, tid)
        assert a.submission_order(batch, 8) == b.submission_order(batch, 8)


def test_plan_seeds_differ():
    a = ChaosPlan(1, p_raise=0.5, p_delay=0.4)
    b = ChaosPlan(2, p_raise=0.5, p_delay=0.4)
    faults_a = [a.fault_for(0, t) for t in range(64)]
    faults_b = [b.fault_for(0, t) for t in range(64)]
    assert faults_a != faults_b


def test_plan_draws_every_action():
    plan = ChaosPlan(7, p_raise=0.35, p_delay=0.35)
    actions = {
        plan.fault_for(b, t).action for b in range(8) for t in range(8)
    }
    assert actions == {"none", "delay", "raise"}


def test_plan_explicit_overrides_win():
    plan = ChaosPlan(
        0, p_raise=0.0, p_delay=0.0,
        faults={(3, 1): FaultSpec("raise")},
    )
    assert plan.fault_for(3, 1).action == "raise"
    assert plan.fault_for(3, 0).action == "none"
    assert not plan.exception_free


def test_plan_exception_free_property():
    assert ChaosPlan(0, p_raise=0.0, p_delay=0.9).exception_free
    assert not ChaosPlan(0, p_raise=0.1).exception_free


def test_plan_validation():
    with pytest.raises(ValueError):
        ChaosPlan(0, p_raise=0.8, p_delay=0.4)  # sums past 1
    with pytest.raises(ValueError):
        ChaosPlan(0, p_raise=-0.1)
    with pytest.raises(ValueError):
        ChaosPlan(0, max_delay_ms=-1.0)


def test_plan_reorder_off_is_identity():
    plan = ChaosPlan(5, reorder=False)
    assert plan.submission_order(0, 6) == list(range(6))


def test_plan_rejected_outside_chaos_mode():
    with pytest.raises(ValueError):
        Executor("threads", plan=ChaosPlan(0))
    with pytest.raises(ValueError):
        Executor("serial", plan=ChaosPlan(0))


def test_unknown_fallback_rejected():
    with pytest.raises(ValueError):
        Executor("threads", fallback="retry-forever")


# ----------------------------------------------------------------------
# Executor containment
# ----------------------------------------------------------------------
def _raise_all_plan(n_tasks: int, batches: int = 4) -> ChaosPlan:
    """Every task of the first ``batches`` batches raises."""
    return ChaosPlan(
        0, p_raise=0.0, p_delay=0.0, reorder=False,
        faults={
            (b, t): FaultSpec("raise")
            for b in range(batches) for t in range(n_tasks)
        },
    )


def test_batch_error_aggregates_all_failures():
    plan = _raise_all_plan(3)
    with Executor("chaos", plan=plan) as ex:
        with pytest.raises(BatchExecutionError) as exc_info:
            ex.run_batch([lambda: None] * 3, label="spmv.mult")
    err = exc_info.value
    assert err.label == "spmv.mult"
    assert err.batch == 0
    assert err.n_tasks == 3
    # Every task either raised (recorded with its tid) or was cancelled
    # before starting — nothing is unaccounted for.
    assert len(err.failures) + err.n_cancelled == 3
    tids = [f.tid for f in err.failures]
    assert tids == sorted(tids)
    assert set(tids) <= set(range(3))
    assert all(
        isinstance(f.error, ChaosInjectedError) for f in err.failures
    )
    assert isinstance(err.first, ChaosInjectedError)
    assert isinstance(err, RuntimeError)  # taxonomy stays catchable


def test_batch_error_is_typed_execution_error():
    assert issubclass(BatchExecutionError, ExecutionError)
    assert issubclass(PoisonedOperatorError, ExecutionError)
    assert issubclass(OperatorClosedError, ExecutionError)
    assert issubclass(ChaosInjectedError, ExecutionError)
    assert issubclass(ExecutionError, RuntimeError)


def test_chaos_injected_error_carries_coordinates():
    plan = ChaosPlan(0, faults={(0, 2): FaultSpec("raise")}, p_delay=0.0)
    with Executor("chaos", plan=plan) as ex:
        with pytest.raises(BatchExecutionError) as exc_info:
            ex.run_batch([lambda: None] * 4)
    failure = exc_info.value.failures[0]
    assert failure.tid == 2
    assert failure.error.batch == 0
    assert failure.error.tid == 2


def test_batch_failure_counts_warning():
    reset_warning_counts()
    plan = _raise_all_plan(2, batches=1)
    with Executor("chaos", plan=plan) as ex:
        with pytest.raises(BatchExecutionError):
            ex.run_batch([lambda: None] * 2)
    assert warning_counts().get("resilience.batch_failure") == 1


def test_serial_fallback_recovers_batch():
    reset_warning_counts()
    plan = _raise_all_plan(4, batches=1)
    ran = []
    resets = []
    tasks = [lambda i=i: ran.append(i) for i in range(4)]
    with Executor("chaos", plan=plan, fallback="serial") as ex:
        ex.run_batch(tasks, reset=lambda: resets.append(True))
    # The retry ran every *original* task (unwrapped) after reset().
    assert sorted(ran) == [0, 1, 2, 3]
    assert resets == [True]
    assert warning_counts().get("resilience.serial_fallback") == 1


def test_serial_fallback_still_fails_on_genuine_error():
    plan = _raise_all_plan(1, batches=1)

    def genuinely_broken():
        raise ZeroDivisionError("task bug, not chaos")

    with Executor("chaos", plan=plan, fallback="serial") as ex:
        with pytest.raises(BatchExecutionError) as exc_info:
            ex.run_batch([genuinely_broken])
    assert isinstance(exc_info.value.first, ZeroDivisionError)


def test_chaos_delay_only_matches_threads_semantics():
    done = set()
    plan = ChaosPlan(3, p_raise=0.0, p_delay=0.8, max_delay_ms=0.2)
    with Executor("chaos", plan=plan) as ex:
        ex.run_batch([lambda i=i: done.add(i) for i in range(10)])
    assert done == set(range(10))


# ----------------------------------------------------------------------
# Driver-level containment: a faulted parallel apply never returns a
# silently wrong vector.
# ----------------------------------------------------------------------
def test_parallel_driver_contains_injected_fault():
    matrix, parts = build_symmetric("random", "sss", "thirds")
    x = rhs_block(matrix.n_cols, None)
    plan = _raise_all_plan(len(parts), batches=1)
    ex = Executor("chaos", plan=plan)
    try:
        kernel = ParallelSymmetricSpMV(matrix, parts, "indexed", executor=ex)
        with pytest.raises(BatchExecutionError):
            kernel(x)
        # Batch 1 draws no fault: the same kernel then runs clean.
        assert np.allclose(kernel(x), reference_product("random", x))
    finally:
        ex.close()


def test_unsymmetric_driver_contains_injected_fault():
    matrix, parts = build_unsymmetric("random", "csr", "thirds")
    x = rhs_block(matrix.n_cols, None)
    plan = _raise_all_plan(len(parts), batches=1)
    ex = Executor("chaos", plan=plan)
    try:
        kernel = ParallelSpMV(matrix, parts, executor=ex)
        with pytest.raises(BatchExecutionError):
            kernel(x)
        assert np.allclose(kernel(x), reference_product("random", x))
    finally:
        ex.close()


def test_driver_fallback_serial_degrades_gracefully():
    reset_warning_counts()
    matrix, parts = build_symmetric("random", "sss", "thirds")
    x = rhs_block(matrix.n_cols, None)
    plan = _raise_all_plan(len(parts), batches=1)
    ex = Executor("chaos", plan=plan, fallback="serial")
    try:
        kernel = ParallelSymmetricSpMV(matrix, parts, "indexed", executor=ex)
        y = kernel(x)  # faulted batch degrades to one serial retry
    finally:
        ex.close()
    assert np.allclose(y, reference_product("random", x))
    assert warning_counts().get("resilience.serial_fallback") == 1


# ----------------------------------------------------------------------
# Bound-operator poisoning
# ----------------------------------------------------------------------
def _bound_with_faults(fmt="sss", on_poison="recover", batches=1):
    matrix, parts = build_symmetric("random", fmt, "thirds")
    plan = _raise_all_plan(len(parts), batches=batches)
    ex = Executor("chaos", plan=plan)
    driver = ParallelSymmetricSpMV(matrix, parts, "indexed", executor=ex)
    return driver.bind(on_poison=on_poison), ex


def test_failed_apply_poisons_operator():
    op, ex = _bound_with_faults()
    x = rhs_block(op.matrix.n_cols, None)
    try:
        assert not op.poisoned
        with pytest.raises(BatchExecutionError):
            op(x)
        assert op.poisoned
    finally:
        op.close()
        ex.close()


def test_poisoned_operator_auto_recovers():
    reset_warning_counts()
    op, ex = _bound_with_faults(on_poison="recover")
    x = rhs_block(op.matrix.n_cols, None)
    try:
        with pytest.raises(BatchExecutionError):
            op(x)
        # Default policy: the next call re-zeroes in full and computes.
        y = op(x)
        assert not op.poisoned
        assert np.allclose(y, reference_product("random", x))
        assert warning_counts().get("resilience.operator_poisoned") == 1
        assert warning_counts().get("resilience.operator_recovered") == 1
    finally:
        op.close()
        ex.close()


def test_poisoned_operator_raise_policy():
    op, ex = _bound_with_faults(on_poison="raise")
    x = rhs_block(op.matrix.n_cols, None)
    try:
        with pytest.raises(BatchExecutionError):
            op(x)
        with pytest.raises(PoisonedOperatorError):
            op(x)
        op.recover()
        assert not op.poisoned
        y = op(x)
        assert np.allclose(y, reference_product("random", x))
    finally:
        op.close()
        ex.close()


def test_recover_is_noop_on_healthy_operator():
    reset_warning_counts()
    matrix, parts = build_symmetric("random", "sss", "thirds")
    op = ParallelSymmetricSpMV(matrix, parts, "indexed").bind()
    try:
        op.recover()
        assert "resilience.operator_recovered" not in warning_counts()
    finally:
        op.close()


def test_invalid_poison_policy_rejected():
    matrix, parts = build_symmetric("random", "sss", "thirds")
    driver = ParallelSymmetricSpMV(matrix, parts, "indexed")
    with pytest.raises(ValueError):
        driver.bind(on_poison="ignore")


def test_apply_after_close_is_typed():
    matrix, parts = build_symmetric("random", "sss", "thirds")
    op = ParallelSymmetricSpMV(matrix, parts, "indexed").bind()
    op.close()
    x = rhs_block(matrix.n_cols, None)
    with pytest.raises(OperatorClosedError):
        op(x)
    with pytest.raises(RuntimeError):  # old call sites keep working
        op(x)
    with pytest.raises(OperatorClosedError):
        op.recover()


def test_poisoned_spmm_recovers_bit_identical():
    # Multi-RHS path: the (p, N, k) locals are re-zeroed in full, so
    # the post-recovery result is bit-identical to an untouched solve.
    matrix, parts = build_symmetric("random", "csx-sym", "thirds")
    X = rhs_block(matrix.n_cols, 3)
    clean = ParallelSymmetricSpMV(matrix, parts, "effective")(X)
    plan = _raise_all_plan(len(parts), batches=1)
    ex = Executor("chaos", plan=plan)
    op = ParallelSymmetricSpMV(
        matrix, parts, "effective", executor=ex
    ).bind(3)
    try:
        with pytest.raises(BatchExecutionError):
            op(X)
        assert np.array_equal(op(X), clean)
    finally:
        op.close()
        ex.close()


# ----------------------------------------------------------------------
# The containment property, as a hypothesis sweep over fault plans:
# contained typed error XOR bit-identical output — never silent
# corruption.
# ----------------------------------------------------------------------
@settings(deadline=None, max_examples=25)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    p_raise=st.floats(min_value=0.0, max_value=0.5),
    p_delay=st.floats(min_value=0.0, max_value=0.5),
    fmt=st.sampled_from(("sss", "csx-sym")),
    reduction=st.sampled_from(("naive", "effective", "indexed")),
)
def test_chaos_containment_property(seed, p_raise, p_delay, fmt, reduction):
    matrix, parts = build_symmetric("random", fmt, "thirds")
    x = rhs_block(matrix.n_cols, None)
    serial = ParallelSymmetricSpMV(matrix, parts, reduction)(x)
    plan = ChaosPlan(
        seed, p_raise=p_raise, p_delay=p_delay, max_delay_ms=0.2
    )
    ex = Executor("chaos", plan=plan)
    try:
        kernel = ParallelSymmetricSpMV(
            matrix, parts, reduction, executor=ex
        )
        for _ in range(3):  # several batches sample several fault draws
            try:
                y = kernel(x)
            except CONTAINED:
                continue  # contained: typed error, no output to trust
            assert np.array_equal(y, serial)
    finally:
        ex.close()


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_chaos_containment_property_bound(seed):
    matrix, parts = build_symmetric("random", "sss", "thirds")
    x = rhs_block(matrix.n_cols, None)
    serial = ParallelSymmetricSpMV(matrix, parts, "indexed")(x)
    plan = ChaosPlan(seed, p_raise=0.3, p_delay=0.3, max_delay_ms=0.2)
    ex = Executor("chaos", plan=plan)
    op = ParallelSymmetricSpMV(
        matrix, parts, "indexed", executor=ex
    ).bind()
    try:
        for _ in range(4):
            try:
                y = op(x)
            except CONTAINED:
                continue
            assert np.array_equal(y, serial)
    finally:
        op.close()
        ex.close()


# ----------------------------------------------------------------------
# Process-backend resilience: worker death is a contained, typed,
# recoverable failure; benign chaos over real processes stays
# bit-identical to serial.
# ----------------------------------------------------------------------
needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)


def _processes_bound(**executor_kwargs):
    matrix, parts = build_symmetric("random", "sss", "thirds")
    x = rhs_block(matrix.n_cols, None)
    serial = np.array(ParallelSymmetricSpMV(matrix, parts, "indexed")(x))
    ex = Executor("processes", max_workers=2, **executor_kwargs)
    op = ParallelSymmetricSpMV(
        matrix, parts, "indexed", executor=ex
    ).bind()
    return op, ex, x, serial


@needs_shm
@settings(deadline=None, max_examples=5)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_processes_benign_chaos_bit_identical(seed):
    # Delay + reorder faults fire *inside the workers* / perturb the
    # parent's dispatch order; the disjoint-write algorithm must stay
    # bit-identical to serial through real process boundaries.
    plan = ChaosPlan(
        seed, p_raise=0.0, p_delay=0.5, max_delay_ms=0.2, reorder=True
    )
    op, ex, x, serial = _processes_bound(plan=plan)
    try:
        for _ in range(2):
            assert np.array_equal(np.array(op(x)), serial)
    finally:
        op.close()
        ex.close()
    assert live_segments() == []


@needs_shm
def test_killed_worker_is_typed_and_respawned():
    reset_warning_counts()
    op, ex, x, serial = _processes_bound()
    try:
        assert np.array_equal(np.array(op(x)), serial)
        os.kill(op._remote.worker_pids()[0], signal.SIGKILL)
        # Pin the mid-batch-death path: under scheduler load the pool
        # can observe the corpse and respawn before dispatch, which
        # recovers without raising (also correct, but it is the typed
        # crash we are testing). Restored below so the follow-up apply
        # exercises the lazy respawn.
        real_ensure = op._remote._ensure_workers
        op._remote._ensure_workers = lambda: None
        try:
            with pytest.raises(BatchExecutionError) as exc_info:
                op(x)
        finally:
            op._remote._ensure_workers = real_ensure
        crashes = [
            f for f in exc_info.value.failures
            if isinstance(f.error, WorkerCrashError)
        ]
        assert crashes  # the dead worker's tasks, each typed
        assert op.poisoned
        # Next application: lazy respawn + auto-recovery, then correct.
        assert np.array_equal(np.array(op(x)), serial)
        assert warning_counts().get("resilience.worker_respawn", 0) >= 1
    finally:
        op.close()
        ex.close()
    assert live_segments() == []


@needs_shm
def test_killed_worker_serial_fallback_recovers():
    reset_warning_counts()
    op, ex, x, serial = _processes_bound(fallback="serial")
    try:
        assert np.array_equal(np.array(op(x)), serial)
        os.kill(op._remote.worker_pids()[0], signal.SIGKILL)
        # Pin the mid-batch-death path: under scheduler load the pool
        # can observe the corpse and respawn before dispatch, which
        # recovers without any fallback (also correct, but not the
        # path under test — see test above for the respawn path).
        op._remote._ensure_workers = lambda: None
        # The crash is contained, then the batch degrades to one serial
        # retry of the parent-side closures — over the *same* shared
        # arrays, so the output workspace is the real result.
        y = np.array(op(x))
        assert np.array_equal(y, serial)
        assert not op.poisoned
        assert warning_counts().get("resilience.serial_fallback") == 1
    finally:
        op.close()
        ex.close()
    assert live_segments() == []
