"""Tests for the differential fuzzing harness (repro.fuzz)."""

import io

import numpy as np
import pytest

from repro.cli import main
from repro.formats import COOMatrix, CSRMatrix, SSSMatrix
from repro.fuzz import (
    CASE_KINDS,
    Combo,
    FuzzConfig,
    all_combos,
    assert_combo,
    check_against_oracle,
    emit_regression_test,
    generate_case,
    generate_mm_case,
    run_fuzz,
    shrink_case,
    tolerance,
)


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def test_cases_are_seed_deterministic():
    for index in (0, 7, 23):
        a = generate_case(42, index)
        b = generate_case(42, index)
        assert a.name == b.name and a.shape == b.shape
        assert np.array_equal(a.rows, b.rows)
        assert np.array_equal(a.cols, b.cols)
        assert np.array_equal(a.vals, b.vals)


def test_different_seeds_differ():
    a = generate_case(1, 0)
    b = generate_case(2, 0)
    assert (
        a.shape != b.shape
        or a.rows.size != b.rows.size
        or not np.array_equal(a.vals, b.vals)
    )


def test_every_kind_generates_valid_cases():
    for index in range(len(CASE_KINDS)):
        case = generate_case(5, index)
        assert case.rows.size == case.cols.size == case.vals.size
        assert np.isfinite(case.dense).all()
        if case.symmetric:
            assert np.allclose(case.dense, case.dense.T, rtol=1e-9)


def test_mm_cases_parse_or_raise_as_declared():
    from repro.formats import ValidationError
    from repro.matrices import read_matrix_market

    for index in range(12):
        mm = generate_mm_case(9, index)
        if mm.expect_error:
            with pytest.raises(ValidationError):
                read_matrix_market(io.StringIO(mm.text))
        else:
            got = read_matrix_market(io.StringIO(mm.text))
            assert np.array_equal(got.to_dense(), mm.dense)


# ----------------------------------------------------------------------
# Oracle
# ----------------------------------------------------------------------
def test_oracle_accepts_exact_result():
    dense = np.diag([1.0, 2.0, 3.0])
    x = np.ones(3)
    ok, ratio = check_against_oracle(dense @ x, dense, x)
    assert ok and ratio == 0.0


def test_oracle_rejects_corrupted_result():
    dense = np.diag([1.0, 2.0, 3.0])
    x = np.ones(3)
    y = dense @ x
    y[1] += 1e-8
    ok, ratio = check_against_oracle(y, dense, x)
    assert not ok and ratio > 1.0


def test_oracle_rejects_shape_and_nan():
    dense = np.eye(2)
    x = np.ones(2)
    assert not check_against_oracle(np.ones(3), dense, x)[0]
    assert not check_against_oracle(np.array([1.0, np.nan]), dense, x)[0]


def test_tolerance_scales_with_magnitude_not_result():
    # A cancelling row: result ~0, but the bound follows |A| @ |x|.
    dense = np.array([[1e8, -1e8]])
    x = np.ones(2)
    tol = tolerance(dense, x)
    assert tol[0] > 1e-9  # far above eps * |result| = 0


# ----------------------------------------------------------------------
# Harness end-to-end
# ----------------------------------------------------------------------
def test_run_fuzz_small_run_passes():
    report = run_fuzz(FuzzConfig(cases=24, seed=11, shrink=False))
    assert report.ok, report.summary()
    assert report.cases_run == 24
    assert report.mm_cases_run > 0
    # Combo rotation covers the whole matrix within `stride` cases.
    assert len(report.combos_covered) == len(all_combos())


def test_assert_combo_on_known_good_case():
    assert_combo(
        (2, 2), [0, 1, 0, 1], [0, 0, 1, 1], [2.0, 1.0, 1.0, 3.0],
        fmt="sss", driver="parallel", op="spmv",
        reduction="indexed", p=2, seed=0, index=0,
    )
    # The emitted-reproducer path must also detect wrongness: an
    # asymmetric matrix through a symmetric format fails as exception.
    with pytest.raises(AssertionError):
        assert_combo(
            (2, 2), [0], [1], [1.0],
            fmt="sss", driver="serial", op="spmv",
        )


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
class _PoisonCombo:
    """Stub combo: 'fails' whenever the poison value 99.0 is stored."""

    fmt, driver, op, reduction, p, k = "csr", "serial", "spmv", "indexed", 2, 3

    def describe(self):
        return "stub/poison"

    def run(self, case):
        if np.any(case.vals == 99.0):
            return False, "mismatch", float("inf")
        return True, "", 0.0


def test_shrink_reduces_to_minimal_reproducer():
    rng = np.random.default_rng(0)
    n = 20
    rows = rng.integers(0, n, 60)
    cols = rng.integers(0, n, 60)
    vals = rng.uniform(1.0, 2.0, 60)
    vals[37] = 99.0
    case = generate_case(0, 0)  # template for the dataclass fields
    from repro.fuzz import FuzzCase

    case = FuzzCase(
        name="poison", seed=0, index=0, shape=(n, n),
        rows=rows, cols=cols, vals=vals, symmetric=False,
    )
    combo = _PoisonCombo()
    shrunk = shrink_case(case, combo, "mismatch")
    assert shrunk is not None
    assert shrunk.rows.size == 1
    assert shrunk.vals[0] == 99.0
    assert shrunk.shape[0] <= 2  # index compaction kicked in

    src = emit_regression_test(shrunk, combo, "mismatch")
    compile(src, "<fuzz-reproducer>", "exec")  # valid python
    assert "assert_combo" in src and "99.0" in src


def test_shrink_returns_none_for_flaky_failure():
    case = generate_case(0, 0)
    assert shrink_case(case, Combo("csr", "serial", "spmv"), "mismatch") is None


# ----------------------------------------------------------------------
# Fuzz-found regression: row sums must be row-local
# ----------------------------------------------------------------------
def test_csr_row_sums_are_row_local():
    # Found by repro.fuzz (sym_extreme_values): the segment reduction
    # used a global prefix-sum difference, so a row's rounding error
    # scaled with the magnitude of every preceding row.  A tiny row
    # after a huge one lost its entire value.
    dense = np.array([[1e100, 0.0], [0.0, 3.0]])
    y = CSRMatrix.from_dense(dense).spmv(np.array([1.0, 1.0]))
    assert y[1] == 3.0  # exact: the row has a single product


def test_csr_spmm_row_sums_are_row_local():
    dense = np.array([[1e100, 0.0], [0.0, 3.0]])
    X = np.ones((2, 2))
    Y = CSRMatrix.from_dense(dense).spmm(X)
    assert np.all(Y[1] == 3.0)


def test_sss_row_sums_are_row_local():
    # Same defect through the SSS direct (lower-triangle) part.
    dense = np.zeros((3, 3))
    dense[1, 0] = dense[0, 1] = 1e100
    dense[2, 0] = dense[0, 2] = 3.0
    m = SSSMatrix.from_coo(COOMatrix.from_dense(dense))
    y = m.spmv(np.array([1.0, 0.0, 0.0]))
    assert y[2] == 3.0


def test_single_entry_rows_are_exact():
    # Every 1-nnz row must equal its single rounded product exactly,
    # independent of the rest of the matrix.
    rng = np.random.default_rng(3)
    n = 12
    dense = np.zeros((n, n))
    idx = rng.permutation(n)
    vals = rng.uniform(-2, 2, n)
    dense[np.arange(n), idx] = vals
    x = rng.standard_normal(n)
    y = CSRMatrix.from_dense(dense).spmv(x)
    assert np.array_equal(y, vals * x[idx])


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_fuzz_smoke(capsys):
    assert main(["fuzz", "--cases", "8", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out


def test_cli_fuzz_writes_reproducer_flag_accepted(tmp_path):
    # A passing run writes no reproducer file.
    path = tmp_path / "rep.py"
    assert main(
        ["fuzz", "--cases", "4", "--seed", "2",
         "--reproducer", str(path)]
    ) == 0
    assert not path.exists()
