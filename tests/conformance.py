"""Cross-format conformance kit (not itself a test module).

``test_conformance.py`` drives this. The kit owns three things:

* a seeded battery of edge-case symmetric matrices — dense-ish random,
  empty rows/columns, all-zero diagonal, banded with runs, 1×1 and
  all-zero — built once and reused across the parametrized suite;
* builders for every storage format from a shared COO matrix;
* partition layouts per case, including single-row partitions and
  layouts with more partitions than rows carrying non-zeros.

Every (format × reduction × {SpM×V, SpM×M}) combination is checked
against the dense product (and scipy, where available) on the same
battery, so a regression in any kernel or reduction fails loudly with
the exact case name in the test id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.formats import (
    BCSRMatrix,
    COOMatrix,
    CSBMatrix,
    CSBSymMatrix,
    CSRMatrix,
    CSXMatrix,
    CSXSymMatrix,
    SSSMatrix,
)

__all__ = [
    "ConformanceCase",
    "CASES",
    "EXECUTOR_BACKENDS",
    "SERIAL_FORMATS",
    "SYMMETRIC_FORMATS",
    "UNSYMMETRIC_DRIVER_FORMATS",
    "REDUCTIONS",
    "COLORING_FORMATS",
    "PARTITION_LAYOUTS",
    "reduction_supported",
    "skip_unless_supported",
    "build_format",
    "build_symmetric",
    "build_unsymmetric",
    "chaos_benign_executor",
    "make_backend_executor",
    "partitions_for",
    "rhs_block",
]

#: Block size shared by the CSB builders (small so tiny cases still
#: produce several blocks).
CSB_BETA = 4

REDUCTIONS = ("naive", "effective", "indexed", "coloring")
PARTITION_LAYOUTS = ("single", "thirds", "per_row", "with_empty")

#: Symmetric formats whose stored lower triangle is recoverable as a
#: CSR triple (``lower_triple()``), which the conflict-free coloring
#: schedule is built from. CSB-Sym keeps its entries block-local and
#: has no symmetric coloring kernel — those combinations skip.
COLORING_FORMATS = ("sss", "csx-sym")


def reduction_supported(fmt: str, method: str) -> bool:
    """Whether ``method`` runs on symmetric format ``fmt`` — only the
    ``coloring`` strategy is format-restricted."""
    return method != "coloring" or fmt in COLORING_FORMATS


def skip_unless_supported(fmt: str, method: str) -> None:
    """Graceful pytest skip for (format × reduction) holes."""
    import pytest

    if not reduction_supported(fmt, method):
        pytest.skip(f"{fmt} has no symmetric coloring kernel")


@dataclass(frozen=True)
class ConformanceCase:
    """One battery entry: a symmetric dense reference matrix."""

    name: str
    dense: np.ndarray = field(compare=False, repr=False)

    @property
    def n(self) -> int:
        return self.dense.shape[0]

    @property
    def coo(self) -> COOMatrix:
        return _case_coo(self.name)


def _random_symmetric(
    n: int,
    density: float,
    seed: int,
    *,
    band: int | None = None,
    with_runs: bool = False,
    zero_diagonal: bool = False,
) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dense = np.zeros((n, n))
    mask = np.triu(rng.random((n, n)) < density, k=1)
    if band is not None:
        rows, cols = np.indices((n, n))
        mask &= np.abs(rows - cols) <= band
    dense[mask] = rng.uniform(-1.0, 1.0, int(mask.sum()))
    if with_runs:
        for off in (1, 2):
            idx = np.arange(n - off)
            dense[idx, idx + off] = rng.uniform(0.1, 1.0, n - off)
    dense = np.triu(dense)
    dense = dense + dense.T
    if not zero_diagonal:
        np.fill_diagonal(dense, rng.uniform(0.5, 2.0, n))
    return dense


def _battery() -> list[ConformanceCase]:
    cases = [
        ConformanceCase(
            "random", _random_symmetric(30, 0.15, seed=11, with_runs=True)
        ),
        ConformanceCase(
            "banded", _random_symmetric(26, 0.5, seed=12, band=3)
        ),
    ]

    # Several completely empty rows/columns (no diagonal either): the
    # partitioners and reductions must survive rows with zero work.
    dense = _random_symmetric(24, 0.2, seed=13)
    for i in (0, 3, 10, 11, 12, 23):
        dense[i, :] = 0.0
        dense[:, i] = 0.0
    cases.append(ConformanceCase("empty_rows", dense))

    # All-zero diagonal: SSS stores an explicit dense diagonal, so the
    # structurally-missing-diagonal path must still round-trip.
    cases.append(
        ConformanceCase(
            "zero_diagonal",
            _random_symmetric(20, 0.25, seed=14, zero_diagonal=True),
        )
    )

    cases.append(ConformanceCase("one_by_one", np.array([[2.5]])))
    cases.append(ConformanceCase("all_zero", np.zeros((5, 5))))
    return cases


CASES: dict[str, ConformanceCase] = {c.name: c for c in _battery()}

SERIAL_FORMATS = (
    "coo",
    "csr",
    "sss",
    "bcsr",
    "csb",
    "csb-sym",
    "csx",
    "csx-sym",
)
SYMMETRIC_FORMATS = ("sss", "csx-sym", "csb-sym")
UNSYMMETRIC_DRIVER_FORMATS = ("csr", "csx")


@lru_cache(maxsize=None)
def _case_coo(case_name: str) -> COOMatrix:
    return COOMatrix.from_dense(CASES[case_name].dense)


@lru_cache(maxsize=None)
def build_format(case_name: str, fmt: str):
    """Serial-kernel format instance for a battery case."""
    coo = _case_coo(case_name)
    builders = {
        "coo": lambda: coo,
        "csr": lambda: CSRMatrix.from_coo(coo),
        "sss": lambda: SSSMatrix.from_coo(coo),
        "bcsr": lambda: BCSRMatrix(coo, (2, 2)),
        "csb": lambda: CSBMatrix(coo, beta=CSB_BETA),
        "csb-sym": lambda: CSBSymMatrix(coo, beta=CSB_BETA),
        "csx": lambda: CSXMatrix(coo),
        "csx-sym": lambda: CSXSymMatrix(coo),
    }
    return builders[fmt]()


def partitions_for(case_name: str, layout: str) -> list[tuple[int, int]]:
    """Row-partition layout for the parallel drivers.

    ``per_row`` gives one row per partition — for cases with empty rows
    that is strictly more partitions than rows carrying non-zeros.
    ``with_empty`` brackets the row range with zero-width partitions.
    """
    n = CASES[case_name].n
    if layout == "single":
        return [(0, n)]
    if layout == "thirds":
        p = min(3, n)
        bounds = np.linspace(0, n, p + 1).astype(int)
        return [(int(bounds[i]), int(bounds[i + 1])) for i in range(p)]
    if layout == "per_row":
        return [(i, i + 1) for i in range(n)]
    if layout == "with_empty":
        mid = n // 2
        return [(0, 0), (0, mid), (mid, mid), (mid, n), (n, n)]
    raise ValueError(f"unknown layout {layout!r}")


def _aligned_partitions(
    matrix: CSBSymMatrix, layout: str
) -> list[tuple[int, int]]:
    """CSB-Sym requires beta-aligned boundaries; map each layout to its
    closest aligned equivalent (per_row becomes per-block-row)."""
    n = matrix.n_rows
    n_brows = -(-n // matrix.beta)
    if layout == "single":
        return [(0, n)]
    if layout == "thirds":
        return matrix.block_row_partitions(min(3, n_brows))
    if layout == "per_row":
        return matrix.block_row_partitions(n_brows)
    if layout == "with_empty":
        return (
            [(0, 0)]
            + matrix.block_row_partitions(min(2, n_brows))
            + [(n, n)]
        )
    raise ValueError(f"unknown layout {layout!r}")


@lru_cache(maxsize=None)
def build_symmetric(case_name: str, fmt: str, layout: str):
    """(matrix, partitions) for :class:`ParallelSymmetricSpMV`.

    CSX-Sym is preprocessed for exactly the partitions the driver will
    use; CSB-Sym swaps in the beta-aligned equivalent of the layout.
    """
    coo = _case_coo(case_name)
    parts = partitions_for(case_name, layout)
    if fmt == "sss":
        return SSSMatrix.from_coo(coo), parts
    if fmt == "csx-sym":
        return CSXSymMatrix(coo, partitions=parts), parts
    if fmt == "csb-sym":
        m = CSBSymMatrix(coo, beta=CSB_BETA)
        return m, _aligned_partitions(m, layout)
    raise ValueError(f"unknown symmetric format {fmt!r}")


@lru_cache(maxsize=None)
def build_unsymmetric(case_name: str, fmt: str, layout: str):
    """(matrix, partitions) for :class:`ParallelSpMV`."""
    coo = _case_coo(case_name)
    parts = partitions_for(case_name, layout)
    if fmt == "csr":
        return CSRMatrix.from_coo(coo), parts
    if fmt == "csx":
        return CSXMatrix(coo, partitions=parts), parts
    raise ValueError(f"unknown driver format {fmt!r}")


def chaos_benign_executor(seed: int = 0):
    """Chaos executor whose plan only perturbs scheduling.

    Delays and reordered completions, no raised faults: tasks still
    write their disjoint regions and the reduction runs on the caller
    thread, so every driver must stay *bit-identical* to its serial
    execution under this executor.
    """
    from repro.parallel import Executor
    from repro.resilience import ChaosPlan

    return Executor(
        "chaos",
        plan=ChaosPlan(
            seed=seed, p_raise=0.0, p_delay=0.6, max_delay_ms=0.2,
            reorder=True,
        ),
    )


#: Plain executor backends the cross-backend conformance suite sweeps;
#: every one must be *bit-identical* to serial on the whole battery.
EXECUTOR_BACKENDS = ("serial", "threads", "processes")


def make_backend_executor(backend: str, max_workers: int = 2):
    """Executor for one conformance backend, or a pytest skip when the
    platform cannot provide it (``processes`` without working shared
    memory — e.g. a sandbox with /dev/shm sealed)."""
    import pytest

    from repro.parallel import Executor, shared_memory_available

    if backend == "processes" and not shared_memory_available():
        pytest.skip("multiprocessing.shared_memory unavailable")
    if backend == "serial":
        return Executor("serial")
    return Executor(backend, max_workers=max_workers)


def rhs_block(n: int, k: int | None, seed: int = 99) -> np.ndarray:
    """Seeded right-hand side: a vector when ``k`` is None, else an
    ``(n, k)`` block."""
    rng = np.random.default_rng(seed)
    shape = (n,) if k is None else (n, k)
    return rng.standard_normal(shape)


def reference_product(case_name: str, x: np.ndarray) -> np.ndarray:
    """Dense ground truth, cross-checked against scipy when present."""
    dense = CASES[case_name].dense
    expected = dense @ x
    try:
        import scipy.sparse as sp
    except ImportError:  # pragma: no cover - scipy is in the image
        return expected
    sp_ref = sp.csr_matrix(dense) @ x
    assert np.allclose(sp_ref, expected)
    return expected
